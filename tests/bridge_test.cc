// Unit-level properties of the bridging-code generator: exactly-once execution and
// pure-op bridges, for every stop and both directions (section 2.2.2).
#include "src/bridge/bridge.h"

#include <set>

#include <gtest/gtest.h>

#include "src/compiler/compiler.h"
#include "src/mobility/ar_codec.h"

namespace hetm {
namespace {

const char* kProgram = R"(
  class B
    var f: Int
    op body(seed: Int): Int
      var a: Int := seed + 1
      print a
      var b: Int := seed * 2
      var c: Int := b + a
      print c
      var d: Int := c * 3
      var e: Int := d - b
      print e
      var g: Int := e + c
      return g
    end
  end
  main
  end
)";

struct Compiled {
  std::shared_ptr<const CompiledProgram> program;
  const CompiledClass* cls = nullptr;
  const OpInfo* op = nullptr;
};

Compiled CompileB() {
  CompileResult r = CompileSource(kProgram);
  EXPECT_TRUE(r.ok());
  Compiled c;
  c.program = r.program;
  for (const auto& cls : r.program->classes) {
    if (cls->name == "B") {
      c.cls = cls.get();
      c.op = &cls->ops[0];
    }
  }
  return c;
}

// Basic-block boundaries around a position.
bool IsControl(IrKind k) {
  return k == IrKind::kLabel || k == IrKind::kJmp || k == IrKind::kJf || k == IrKind::kRet;
}

// The exactly-once property: for a thread suspended at `stop` in src-schedule code,
// { executed in src } ∪ { bridge ops } ∪ { dst suffix from the entry point } must be
// exactly the block's operation set, with no duplicates.
void CheckExactlyOnce(const OpInfo& op, OptLevel src_opt, OptLevel dst_opt, int stop) {
  const IrFunction& src = op.Ir(src_opt);
  const IrFunction& dst = op.Ir(dst_opt);
  const int n = static_cast<int>(src.instrs.size());
  std::vector<int> identity(n);
  for (int i = 0; i < n; ++i) {
    identity[i] = i;
  }
  const std::vector<int>& perm_src = src_opt == OptLevel::kO0 ? identity : op.perm;
  const std::vector<int>& perm_dst = dst_opt == OptLevel::kO0 ? identity : op.perm;

  int pos_src = -1;
  for (int i = 0; i < n; ++i) {
    if (src.instrs[i].stop == stop) {
      pos_src = i;
    }
  }
  ASSERT_GE(pos_src, 0);
  int bs_src = pos_src;
  while (bs_src > 0 && !IsControl(src.instrs[bs_src - 1].kind)) {
    --bs_src;
  }
  std::set<int> executed;
  for (int p = bs_src; p <= pos_src; ++p) {
    executed.insert(perm_src[p]);
  }

  BridgePlan plan = BuildBridge(op, Arch::kSparc32, src_opt, dst_opt, stop, nullptr);

  // Locate the block in the destination schedule.
  int pos_dst = -1;
  for (int i = 0; i < n; ++i) {
    if (dst.instrs[i].stop == stop) {
      pos_dst = i;
    }
  }
  int bs_dst = pos_dst;
  while (bs_dst > 0 && !IsControl(dst.instrs[bs_dst - 1].kind)) {
    --bs_dst;
  }
  int be_dst = pos_dst;
  while (be_dst < n && !IsControl(dst.instrs[be_dst].kind)) {
    ++be_dst;
  }

  // Entry point lies within the block (or just past it) and everything from the
  // entry on is unexecuted.
  ASSERT_GE(plan.entry_index, bs_dst);
  ASSERT_LE(plan.entry_index, be_dst);
  std::multiset<int> covered;
  for (int q = plan.entry_index; q < be_dst; ++q) {
    EXPECT_EQ(executed.count(perm_dst[q]), 0u) << "entry skips an executed op";
    covered.insert(perm_dst[q]);
  }
  // Bridge ops are pure and correspond to the remaining block operations.
  for (const IrInstr& in : plan.ops) {
    EXPECT_TRUE(IsMotionEligible(in.kind));
  }
  EXPECT_EQ(plan.ops.size() + covered.size() + executed.size(),
            static_cast<size_t>(be_dst - bs_src));
  // No unexecuted stop may sit in the bridge region (the bridge cannot trap).
  for (int q = bs_dst; q < plan.entry_index; ++q) {
    if (executed.count(perm_dst[q]) == 0) {
      EXPECT_TRUE(IsMotionEligible(dst.instrs[q].kind));
    }
  }
}

TEST(Bridge, ExactlyOnceForEveryStopAndDirection) {
  Compiled c = CompileB();
  for (int stop = 1; stop < c.op->ir[0].num_stops; ++stop) {
    CheckExactlyOnce(*c.op, OptLevel::kO0, OptLevel::kO1, stop);
    CheckExactlyOnce(*c.op, OptLevel::kO1, OptLevel::kO0, stop);
  }
}

TEST(Bridge, EntryPcMatchesInstrPcMap) {
  Compiled c = CompileB();
  for (Arch arch : {Arch::kVax32, Arch::kM68k, Arch::kSparc32}) {
    BridgePlan plan = BuildBridge(*c.op, arch, OptLevel::kO0, OptLevel::kO1, 1, nullptr);
    const ArchOpCode& code = c.op->Code(arch, OptLevel::kO1);
    ASSERT_LT(plan.entry_index, static_cast<int>(code.instr_pc.size()));
    EXPECT_EQ(plan.entry_pc, code.instr_pc[plan.entry_index]);
  }
}

TEST(Bridge, ChargesEditReplay) {
  Compiled c = CompileB();
  CostMeter meter{SparcStationSlc()};
  BridgePlan plan =
      BuildBridge(*c.op, Arch::kSparc32, OptLevel::kO0, OptLevel::kO1, 1, &meter);
  EXPECT_EQ(plan.edits_replayed, static_cast<int>(c.op->transposes.size()));
  EXPECT_GT(meter.cycles(), 0u);
}

TEST(Bridge, ExecuteBridgeOpsComputesCorrectValues) {
  Compiled c = CompileB();
  // Suspend at stop 1 (print a) in O0, bridge to O1: the bridge computes the ops O1
  // hoisted above the stop. Seed the AR with the entry state and run the bridge.
  ActivationRecord ar =
      MakeActivation(Arch::kSparc32, c.cls->code_oid, 0, *c.op, 0x40000001);
  WriteCellValue(Arch::kSparc32, *c.op, ar, 0, Value::Int(10));  // seed
  // Execute everything O0 says ran before stop 1: a := seed + 1 (plus consts).
  const IrFunction& fn = c.op->ir[0];
  std::vector<IrInstr> prefix;
  for (const IrInstr& in : fn.instrs) {
    if (in.HasStop()) {
      break;
    }
    prefix.push_back(in);
  }
  ExecuteBridgeOps(Arch::kSparc32, *c.cls, *c.op, ar, prefix, nullptr);

  BridgePlan plan =
      BuildBridge(*c.op, Arch::kSparc32, OptLevel::kO0, OptLevel::kO1, 1, nullptr);
  CostMeter meter{SparcStationSlc()};
  ExecuteBridgeOps(Arch::kSparc32, *c.cls, *c.op, ar, plan.ops, &meter);
  EXPECT_EQ(meter.counters().bridge_ops, plan.ops.size());

  // Whatever the bridge computed must match direct evaluation: b = 20, c = b + a.
  int cell_b = -1;
  int cell_c = -1;
  for (size_t i = 0; i < fn.cells.size(); ++i) {
    if (fn.cells[i].name == "b") cell_b = static_cast<int>(i);
    if (fn.cells[i].name == "c") cell_c = static_cast<int>(i);
  }
  ASSERT_GE(cell_b, 0);
  // b was hoisted above stop 1 by O1 iff it appears in the bridge; if so its value
  // must be correct.
  bool b_in_bridge = false;
  for (const IrInstr& in : plan.ops) {
    if (in.dst == cell_b) {
      b_in_bridge = true;
    }
  }
  if (b_in_bridge) {
    EXPECT_EQ(ReadCellValue(Arch::kSparc32, *c.op, ar, cell_b).i, 20);
  }
  if (cell_c >= 0) {
    bool c_in_bridge = false;
    for (const IrInstr& in : plan.ops) {
      if (in.dst == cell_c) {
        c_in_bridge = true;
      }
    }
    if (c_in_bridge) {
      EXPECT_EQ(ReadCellValue(Arch::kSparc32, *c.op, ar, cell_c).i, 31);
    }
  }
}

TEST(Bridge, SameLevelNeedsNoBridge) {
  Compiled c = CompileB();
  // BuildBridge requires differing levels by contract.
  EXPECT_DEATH(
      BuildBridge(*c.op, Arch::kSparc32, OptLevel::kO0, OptLevel::kO0, 1, nullptr),
      "HETM_CHECK");
}

TEST(Bridge, ExecuteBridgeOpsCoversAllPureKinds) {
  // Direct micro-interpreter checks over a hand-built activation record.
  CompileResult r = CompileSource(R"(
    class K
      var f: Int
      op all(x: Int, y: Real): Bool
        var i: Int := x + 1
        var j: Int := x * i - (x / 2) % 3
        var neg: Int := -j
        var fr: Real := y * 2.0 - 1.0 / y
        var cv: Real := real(i)
        var b1: Bool := (i < j) and (i <= j) or not (i == j)
        var b2: Bool := (fr > cv) or (fr >= cv) or (fr != cv) or (fr < cv) or (fr <= cv)
        var s: String := "k"
        var rf: Ref := self
        var same: Bool := rf == self
        print s
        return b1 and b2 and same and (neg != 0)
      end
    end
    main
    end
  )");
  ASSERT_TRUE(r.ok()) << (r.errors.empty() ? "" : r.errors[0]);
  const CompiledClass* cls = nullptr;
  for (const auto& c : r.program->classes) {
    if (c->name == "K") {
      cls = c.get();
    }
  }
  const OpInfo& op = cls->ops[0];
  const IrFunction& fn = op.ir[0];
  ActivationRecord ar = MakeActivation(Arch::kVax32, cls->code_oid, 0, op, 0x40000001);
  WriteCellValue(Arch::kVax32, op, ar, 0, Value::Int(7));
  WriteCellValue(Arch::kVax32, op, ar, 1, Value::Real(4.0));
  if (fn.self_cell >= 0) {
    WriteCellValue(Arch::kVax32, op, ar, fn.self_cell, Value::Ref(0x40000001));
  }
  // Run every pure instruction before the print stop through the MI interpreter.
  std::vector<IrInstr> pure;
  for (const IrInstr& in : fn.instrs) {
    if (in.HasStop()) {
      break;
    }
    ASSERT_TRUE(IsMotionEligible(in.kind)) << IrKindName(in.kind);
    pure.push_back(in);
  }
  ExecuteBridgeOps(Arch::kVax32, *cls, op, ar, pure, nullptr);
  // Spot-check: i = 8, j = 7*8 - (7/2)%3 = 56 - 0 = 56 (7/2=3, 3%3=0).
  int cell_i = -1;
  int cell_j = -1;
  for (size_t i = 0; i < fn.cells.size(); ++i) {
    if (fn.cells[i].name == "i") cell_i = static_cast<int>(i);
    if (fn.cells[i].name == "j") cell_j = static_cast<int>(i);
  }
  EXPECT_EQ(ReadCellValue(Arch::kVax32, op, ar, cell_i).i, 8);
  EXPECT_EQ(ReadCellValue(Arch::kVax32, op, ar, cell_j).i, 56);
}

}  // namespace
}  // namespace hetm
