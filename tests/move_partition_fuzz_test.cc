// Seeded partition-schedule fuzzer for the move handshake (DESIGN.md section
// 14). Each seed derives a schedule of symmetric/asymmetric cuts — time- and
// frame-triggered, always healing — plus occasional crash-at-handshake-boundary
// triggers, runs a four-node tour program under commit leases and heal
// reconciliation, and asserts the two properties no schedule may violate:
//
//  * Single copy: at quiescence no object is live (resident or in handshake
//    limbo) on two nodes, and the home directory's records stay sound
//    (World::CheckInvariants).
//  * Replay determinism: the same seed reproduces the identical run — equal
//    trace digests, output, error state and simulated end time.
//
// On a violation the test prints the seed and schedule and dumps the flight
// recorder tail, so any failure here is a one-line repro.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "src/emerald/system.h"
#include "src/net/transport.h"

namespace hetm {
namespace {

// Sanitizer instrumentation is ~10x slower; keep the sweep inside CI budget.
#ifdef HETM_SANITIZE
constexpr uint64_t kSchedules = 50;
#else
constexpr uint64_t kSchedules = 200;
#endif

// A thread touring all four nodes while shuttling two data objects between
// them: ~8 move handshakes plus the remote invokes between them, so every
// schedule finds prepares, transfers and commits in flight to bite on. The
// printed values are pure arithmetic — independent of where any object ends up,
// so the full output is one fixed string on every schedule that lets the
// program finish (aborted moves just leave the object where it was).
const char* kTourSource = R"(
    class Cell
      var v: Int
      op set(x: Int): Int
        v := x
        return v
      end
      op get(): Int
        return v
      end
    end
    class Courier
      var sum: Int
      op tour(a: Ref, b: Ref): Int
        sum := a.get()
        move self to nodeat(1)
        move a to nodeat(2)
        sum := sum + b.get()
        move self to nodeat(2)
        move b to nodeat(3)
        sum := sum + a.get()
        move self to nodeat(3)
        sum := sum + b.get()
        move self to nodeat(0)
        move a to nodeat(0)
        return sum
      end
    end
    main
      var a: Ref := new Cell
      var b: Ref := new Cell
      print a.set(3)
      print b.set(4)
      var c: Ref := new Courier
      print c.tour(a, b)
      print 99
    end
)";
const char* kTourOutput = "3\n4\n14\n99\n";

// Group-move variant: a producer/consumer hammering a one-slot monitor buffer
// while the main thread tours the buffer across all four nodes. Every move of
// `b` is a sync-group move — the buffer plus whatever cond-queue and
// entry-queue waiters are parked in it at that instant — so the schedules bite
// on transfers whose payloads carry waiter queues, and an abort must reinstall
// every limbo waiter in its exact queue position. The sum is order-independent
// arithmetic: any schedule that lets the program finish prints one fixed
// string, and World::CheckInvariants' waiter accounting asserts no waiter was
// lost, duplicated or left parked on a departed monitor.
const char* kContendedSource = R"(
    monitor class Buffer
      var slot: Int
      var full: Int
      cond notfull
      cond notempty
      op put(v: Int)
        while full == 1 do
          wait notfull
        end
        slot := v
        full := 1
        signal notempty
      end
      op get(): Int
        while full == 0 do
          wait notempty
        end
        full := 0
        signal notfull
        return slot
      end
    end
    monitor class Sink
      var sum: Int
      var count: Int
      cond donec
      op add(v: Int)
        sum := sum + v
        count := count + 1
        signal donec
      end
      op waitdone(n: Int)
        while count < n do
          wait donec
        end
      end
      op total(): Int
        return sum
      end
    end
    class Producer
      var junk: Int
      op produce(b: Ref, n: Int)
        var i: Int := 1
        while i <= n do
          b.put(i)
          i := i + 1
        end
      end
    end
    class Consumer
      var junk: Int
      op consume(b: Ref, s: Ref, n: Int)
        var i: Int := 0
        while i < n do
          var v: Int := b.get()
          s.add(v)
          i := i + 1
        end
      end
    end
    main
      var b: Ref := new Buffer
      var s: Ref := new Sink
      var p: Ref := new Producer
      var c: Ref := new Consumer
      spawn p.produce(b, 12)
      spawn c.consume(b, s, 12)
      move b to nodeat(1)
      move b to nodeat(2)
      move b to nodeat(3)
      s.waitdone(12)
      move b to nodeat(0)
      print s.total()
      print 77
    end
)";
const char* kContendedOutput = "78\n77\n";

struct Schedule {
  NetConfig cfg;
  bool has_crash = false;
  std::string desc;
};

// The whole schedule is a pure function of the seed (NetRng is bit-stable), so
// "seed N failed" is a complete repro recipe.
Schedule MakeSchedule(uint64_t seed) {
  NetRng rng(seed);
  Schedule s;
  s.cfg.commit_lease = true;
  s.cfg.heal_reconcile = true;
  s.cfg.fault.seed = seed;
  static const MsgType kBoundaries[] = {MsgType::kMovePrepare,
                                        MsgType::kMoveObject,
                                        MsgType::kMoveCommit};
  static const char* kBoundaryNames[] = {"prepare", "transfer", "commit"};
  int windows = 1 + static_cast<int>(rng.Next() % 3);
  for (int i = 0; i < windows; ++i) {
    PartitionWindow w;
    uint64_t mask = 1 + rng.Next() % 14;  // nonempty proper subset of 4 nodes
    for (int n = 0; n < 4; ++n) {
      if ((mask >> n) & 1) {
        w.side_a.push_back(n);
      }
    }
    w.symmetric = rng.Next() % 2 == 0;
    s.desc += (w.symmetric ? "cut sym a={" : "cut asym a={");
    for (int n : w.side_a) {
      s.desc += std::to_string(n);
    }
    s.desc += "} ";
    if (rng.Next() % 2 == 0) {
      w.start_us = 2000.0 + static_cast<double>(rng.Next() % 40) * 1000.0;
      s.desc += "at " + std::to_string(w.start_us) + "us";
    } else {
      int which = static_cast<int>(rng.Next() % 3);
      w.start_trigger_node = static_cast<int>(rng.Next() % 4);
      w.start_on_type = kBoundaries[which];
      w.start_on_ack = rng.Next() % 4 == 0;
      w.start_nth = 1 + static_cast<int>(rng.Next() % 3);
      s.desc += std::string("on ") + kBoundaryNames[which] +
                (w.start_on_ack ? "-ack" : "") + " #" +
                std::to_string(w.start_nth) + " @node" +
                std::to_string(w.start_trigger_node);
    }
    // Always heals: 30..190 ms straddles the 120 ms lease from both sides.
    w.heal_after_us = 30000.0 + static_cast<double>(rng.Next() % 17) * 10000.0;
    s.desc += " heal +" + std::to_string(w.heal_after_us) + "us; ";
    s.cfg.fault.partitions.push_back(w);
  }
  if (rng.Next() % 10 < 3) {
    CrashTrigger ct;
    int which = static_cast<int>(rng.Next() % 3);
    ct.node = static_cast<int>(rng.Next() % 4);
    ct.on_type = kBoundaries[which];
    ct.nth = 1 + static_cast<int>(rng.Next() % 2);
    ct.restart_after_us = kMidMoveRestartAfterUs;
    s.cfg.fault.crash_triggers.push_back(ct);
    s.has_crash = true;
    s.desc += std::string("crash node") + std::to_string(ct.node) + " on " +
              kBoundaryNames[which] + " #" + std::to_string(ct.nth) + "; ";
  }
  return s;
}

struct RunResult {
  bool loaded = false;
  bool quiesced = false;
  std::string output;
  std::string error;
  std::string invariants;
  uint64_t digest = 0;
  uint64_t partition_drops = 0;
  double end_us = 0.0;
};

RunResult RunSchedule(const Schedule& s, const char* source, bool dump_on_violation) {
  EmeraldSystem sys;
  sys.AddNode(SparcStationSlc());
  sys.AddNode(Sun3_100());
  sys.AddNode(VaxStation4000());
  sys.AddNode(Hp9000_433s());
  RunResult r;
  r.loaded = sys.Load(source);
  if (!r.loaded) {
    return r;
  }
  sys.world().EnableNet(s.cfg);
  sys.world().EnableDir(DirConfig{});
  r.quiesced = sys.Run();
  r.output = sys.output();
  r.error = sys.error();
  r.digest = sys.world().tracer().digest();
  r.partition_drops = sys.world().tracer().count(TracePoint::kPartitionDrop);
  r.end_us = sys.world().NowMaxUs();
  if (r.quiesced) {
    r.invariants = sys.world().CheckInvariants();
  }
  if (dump_on_violation && r.quiesced && !r.invariants.empty()) {
    std::fprintf(stderr, "--- flight recorder tail ---\n");
    sys.world().tracer().DumpTail(stderr, 48);
  }
  return r;
}

TEST(MovePartitionFuzz, SeededSchedulesKeepSingleCopyAndReplayDeterministically) {
  uint64_t schedules_that_bit = 0;
  for (uint64_t seed = 1; seed <= kSchedules; ++seed) {
    Schedule s = MakeSchedule(seed);
    // Alternate the workload: odd seeds tour two plain data objects, even
    // seeds group-move a contended monitor with live cond/entry waiters. The
    // invariant check covers waiter accounting either way; alternating keeps
    // the sweep inside the same CI budget while both wire shapes get bitten.
    const char* source = (seed % 2 == 0) ? kContendedSource : kTourSource;
    const char* expected = (seed % 2 == 0) ? kContendedOutput : kTourOutput;
    SCOPED_TRACE("seed " + std::to_string(seed) + ": " + s.desc);
    RunResult first = RunSchedule(s, source, /*dump_on_violation=*/true);
    ASSERT_TRUE(first.loaded);
    // The single-copy and waiter-accounting invariants, on every schedule that
    // reached quiescence: no waiter lost, duplicated or reordered — even
    // across aborted transfers that reinstall the limbo group.
    EXPECT_EQ(first.invariants, "") << "seed " << seed << ": " << s.desc;
    if (!s.has_crash) {
      // No crash-stop in the schedule: cuts always heal, so the handshake
      // protocol owes us a finished program — anything less means a copy (and
      // the thread inside it) was lost to a healed partition.
      EXPECT_TRUE(first.quiesced) << "seed " << seed << ": " << first.error;
      EXPECT_EQ(first.error, "") << "seed " << seed << ": " << s.desc;
      EXPECT_EQ(first.output, expected) << "seed " << seed << ": " << s.desc;
    }
    // Replay determinism: the identical schedule reproduces the identical run.
    RunResult second = RunSchedule(s, source, /*dump_on_violation=*/false);
    EXPECT_EQ(first.digest, second.digest) << "seed " << seed << ": " << s.desc;
    EXPECT_EQ(first.output, second.output) << "seed " << seed;
    EXPECT_EQ(first.error, second.error) << "seed " << seed;
    EXPECT_EQ(first.end_us, second.end_us) << "seed " << seed;
    if (first.partition_drops > 0) {
      schedules_that_bit += 1;
    }
    if (::testing::Test::HasFailure()) {
      std::fprintf(stderr, "failing seed %llu: %s\n",
                   static_cast<unsigned long long>(seed), s.desc.c_str());
      break;  // one seed's dump is a repro; don't bury it under later seeds
    }
  }
  // The sweep must not be vacuous: a healthy share of schedules actually
  // dropped frames at a cut. (Trigger frames that never occur leave a window
  // closed — the contended workload performs half as many moves as the tour,
  // so its frame-triggered windows sit unarmed more often.)
  EXPECT_GT(schedules_that_bit, kSchedules / 4);
}

}  // namespace
}  // namespace hetm
