#include "src/support/endian.h"

#include <gtest/gtest.h>

namespace hetm {
namespace {

TEST(Endian, Swap16) {
  EXPECT_EQ(ByteSwap16(0x1234), 0x3412);
  EXPECT_EQ(ByteSwap16(0x0000), 0x0000);
  EXPECT_EQ(ByteSwap16(0xFFFF), 0xFFFF);
  EXPECT_EQ(ByteSwap16(0x00FF), 0xFF00);
}

TEST(Endian, Swap32) {
  EXPECT_EQ(ByteSwap32(0x12345678u), 0x78563412u);
  EXPECT_EQ(ByteSwap32(0x00000001u), 0x01000000u);
  EXPECT_EQ(ByteSwap32(0xDEADBEEFu), 0xEFBEADDEu);
}

TEST(Endian, Swap64) {
  EXPECT_EQ(ByteSwap64(0x0102030405060708ull), 0x0807060504030201ull);
  EXPECT_EQ(ByteSwap64(ByteSwap64(0xCAFEBABE12345678ull)), 0xCAFEBABE12345678ull);
}

TEST(Endian, StoreLoadBigEndianLayout) {
  uint8_t buf[4];
  Store32(buf, 0x12345678u, ByteOrder::kBig);
  EXPECT_EQ(buf[0], 0x12);
  EXPECT_EQ(buf[1], 0x34);
  EXPECT_EQ(buf[2], 0x56);
  EXPECT_EQ(buf[3], 0x78);
  EXPECT_EQ(Load32(buf, ByteOrder::kBig), 0x12345678u);
}

TEST(Endian, StoreLoadLittleEndianLayout) {
  uint8_t buf[4];
  Store32(buf, 0x12345678u, ByteOrder::kLittle);
  EXPECT_EQ(buf[0], 0x78);
  EXPECT_EQ(buf[1], 0x56);
  EXPECT_EQ(buf[2], 0x34);
  EXPECT_EQ(buf[3], 0x12);
  EXPECT_EQ(Load32(buf, ByteOrder::kLittle), 0x12345678u);
}

TEST(Endian, CrossOrderLoadIsSwap) {
  uint8_t buf[4];
  Store32(buf, 0xA1B2C3D4u, ByteOrder::kLittle);
  EXPECT_EQ(Load32(buf, ByteOrder::kBig), ByteSwap32(0xA1B2C3D4u));
}

class EndianRoundTrip : public ::testing::TestWithParam<ByteOrder> {};

TEST_P(EndianRoundTrip, AllWidths) {
  ByteOrder order = GetParam();
  uint8_t buf[8];
  // Deterministic pseudo-random sweep.
  uint64_t x = 0x9E3779B97F4A7C15ull;
  for (int i = 0; i < 200; ++i) {
    x = x * 6364136223846793005ull + 1442695040888963407ull;
    Store16(buf, static_cast<uint16_t>(x), order);
    EXPECT_EQ(Load16(buf, order), static_cast<uint16_t>(x));
    Store32(buf, static_cast<uint32_t>(x), order);
    EXPECT_EQ(Load32(buf, order), static_cast<uint32_t>(x));
    Store64(buf, x, order);
    EXPECT_EQ(Load64(buf, order), x);
  }
}

INSTANTIATE_TEST_SUITE_P(BothOrders, EndianRoundTrip,
                         ::testing::Values(ByteOrder::kLittle, ByteOrder::kBig));

}  // namespace
}  // namespace hetm
