// Guest-program failures must surface as runtime errors, never host crashes.
#include <gtest/gtest.h>

#include "src/emerald/system.h"

namespace hetm {
namespace {

void ExpectRuntimeError(const std::string& src, const std::string& needle) {
  EmeraldSystem sys;
  sys.AddNode(SparcStationSlc());
  sys.AddNode(VaxStation4000());
  ASSERT_TRUE(sys.Load(src)) << (sys.errors().empty() ? "" : sys.errors()[0]);
  EXPECT_FALSE(sys.Run());
  EXPECT_NE(sys.error().find(needle), std::string::npos)
      << "got error: " << sys.error();
  EXPECT_NE(sys.output().find("RUNTIME ERROR"), std::string::npos);
}

TEST(RuntimeError, DivisionByZero) {
  ExpectRuntimeError(R"(
    main
      var z: Int := 0
      print 7 / z
    end
  )",
                     "division by zero");
}

TEST(RuntimeError, ModuloByZero) {
  ExpectRuntimeError(R"(
    main
      var z: Int := 0
      print 7 % z
    end
  )",
                     "division by zero");
}

TEST(RuntimeError, InvokeNil) {
  ExpectRuntimeError(R"(
    class C
      var f: Int
      op go(): Int
        return 1
      end
    end
    main
      var r: Ref := nil
      print r.go()
    end
  )",
                     "nil");
}

TEST(RuntimeError, NoSuchOperationOnClass) {
  ExpectRuntimeError(R"(
    class A
      var f: Int
      op only_a(): Int
        return 1
      end
    end
    class B
      var f: Int
      op only_b(): Int
        return 2
      end
    end
    main
      var b: Ref := new B
      print b.only_a()
    end
  )",
                     "has no operation");
}

TEST(RuntimeError, NodeAtOutOfRange) {
  ExpectRuntimeError(R"(
    main
      print nodeat(99)
    end
  )",
                     "no such node");
}

TEST(RuntimeError, InvokeOnNodeObject) {
  ExpectRuntimeError(R"(
    class Decoy
      var f: Int
      op anything(): Int
        return 1
      end
    end
    main
      var n: Node := here()
      print n.anything()
    end
  )",
                     "does not support user operations");
}

TEST(RuntimeError, FuelLimitStopsRunawayLoop) {
  EmeraldSystem sys;
  sys.AddNode(SparcStationSlc());
  sys.world().SetFuelLimit(100000);
  ASSERT_TRUE(sys.Load(R"(
    main
      var i: Int := 0
      while true do
        i := i + 1
      end
    end
  )"));
  EXPECT_FALSE(sys.Run());
  EXPECT_NE(sys.error().find("fuel"), std::string::npos);
}

TEST(RuntimeError, RemoteFailureReportsToo) {
  // The failing division happens on the remote node after migration.
  ExpectRuntimeError(R"(
    class C
      var f: Int
      op boom(): Int
        move self to nodeat(1)
        var z: Int := 0
        return 1 / z
      end
    end
    main
      var c: Ref := new C
      print c.boom()
    end
  )",
                     "division by zero");
}

TEST(RuntimeError, CompileErrorsAreReportedNotRun) {
  EmeraldSystem sys;
  sys.AddNode(SparcStationSlc());
  EXPECT_FALSE(sys.Load("main\nvar x: Int := true\nend"));
  ASSERT_FALSE(sys.errors().empty());
  EXPECT_NE(sys.errors()[0].find("expected Int"), std::string::npos);
}

TEST(RuntimeError, InvokeOnStringObject) {
  ExpectRuntimeError(R"(
    class Decoy
      var f: Int
      op anything(): Int
        return 1
      end
    end
    main
      // A dynamically created string (literals are literal-OID objects and are
      // rejected one check earlier).
      var s: String := concat("he", "llo")
      var r: Ref := s
      print r.anything()
    end
  )",
                     "strings have no user operations");
}

}  // namespace
}  // namespace hetm
