// Per-architecture instruction encoding round trips and format properties.
#include "src/isa/isa.h"

#include <gtest/gtest.h>

namespace hetm {
namespace {

bool SameOperand(const MOperand& a, const MOperand& b) { return a == b; }

void ExpectRoundTrip(Arch arch, const std::vector<MicroOp>& ops) {
  EncodedCode enc = Encode(arch, ops);
  ASSERT_EQ(enc.pcs.size(), ops.size() + 1);
  EXPECT_EQ(enc.pcs.back(), enc.bytes.size());
  for (size_t i = 0; i < ops.size(); ++i) {
    MicroOp d = DecodeAt(arch, enc.bytes, enc.pcs[i]);
    EXPECT_EQ(d.kind, ops[i].kind) << ArchName(arch) << " op " << i;
    EXPECT_EQ(d.length, enc.pcs[i + 1] - enc.pcs[i]);
    EXPECT_GT(d.cycles, 0u);
    EXPECT_TRUE(SameOperand(d.dst, ops[i].dst)) << ArchName(arch) << " op " << i;
    EXPECT_TRUE(SameOperand(d.a, ops[i].a)) << ArchName(arch) << " op " << i;
    EXPECT_TRUE(SameOperand(d.b, ops[i].b)) << ArchName(arch) << " op " << i;
    if (ops[i].kind == MKind::kCall || ops[i].kind == MKind::kTrap) {
      EXPECT_EQ(d.site, ops[i].site);
    }
    if (ops[i].kind == MKind::kGetF || ops[i].kind == MKind::kSetF ||
        ops[i].kind == MKind::kGetFD || ops[i].kind == MKind::kSetFD) {
      EXPECT_EQ(d.imm, ops[i].imm);
    }
    if (ops[i].kind == MKind::kFMovImm) {
      EXPECT_EQ(d.fimm, ops[i].fimm);
    }
    if (ops[i].kind == MKind::kJmp || ops[i].kind == MKind::kJf) {
      EXPECT_EQ(d.target_pc, enc.pcs[ops[i].target_index]) << ArchName(arch);
    }
  }
}

MicroOp Mk(MKind kind, MOperand dst = MOperand::None(), MOperand a = MOperand::None(),
           MOperand b = MOperand::None()) {
  MicroOp m;
  m.kind = kind;
  m.dst = dst;
  m.a = a;
  m.b = b;
  return m;
}

TEST(IsaVax, MemoryToMemoryForms) {
  // The VAX does 3-operand arithmetic with any mix of register, slot and immediate
  // operands — one instruction where SPARC needs four.
  std::vector<MicroOp> ops = {
      Mk(MKind::kAdd, MOperand::Slot(12), MOperand::Slot(4), MOperand::Imm(-100000)),
      Mk(MKind::kMul, MOperand::Reg(3), MOperand::Slot(8), MOperand::Reg(2)),
      Mk(MKind::kMov, MOperand::Slot(0), MOperand::Imm(0x7FFFFFFF)),
      Mk(MKind::kCmpLt, MOperand::Reg(5), MOperand::Slot(16), MOperand::Imm(7)),
      Mk(MKind::kFAdd, MOperand::Slot(24), MOperand::Slot(32), MOperand::Slot(40)),
      Mk(MKind::kRemque, MOperand::None(), MOperand::Reg(6)),
      Mk(MKind::kRet, MOperand::None(), MOperand::Slot(4)),
  };
  ExpectRoundTrip(Arch::kVax32, ops);
}

TEST(IsaVax, FloatLiteralStoredInVaxDFormat) {
  std::vector<MicroOp> ops = {Mk(MKind::kFMovImm, MOperand::Slot(8))};
  ops[0].fimm = 3.140625;
  EncodedCode enc = Encode(Arch::kVax32, ops);
  MicroOp d = DecodeAt(Arch::kVax32, enc.bytes, 0);
  EXPECT_EQ(d.fimm, 3.140625);
  // The same literal encodes to different code bytes on an IEEE architecture.
  EncodedCode m68k = Encode(Arch::kM68k, ops);
  EXPECT_NE(enc.bytes, m68k.bytes);
}

TEST(IsaM68k, TwoOperandArithmeticRequiresDstEqualsA) {
  std::vector<MicroOp> ops = {
      Mk(MKind::kAdd, MOperand::Reg(3), MOperand::Reg(3), MOperand::Slot(8)),
      Mk(MKind::kSub, MOperand::Slot(4), MOperand::Slot(4), MOperand::Imm(9)),
      Mk(MKind::kFAdd, MOperand::Slot(8), MOperand::Slot(8), MOperand::Slot(16)),
  };
  ExpectRoundTrip(Arch::kM68k, ops);
}

TEST(IsaM68kDeath, ThreeOperandAddRejected) {
  std::vector<MicroOp> ops = {
      Mk(MKind::kAdd, MOperand::Reg(1), MOperand::Reg(2), MOperand::Reg(3))};
  EXPECT_DEATH(Encode(Arch::kM68k, ops), "dst == a");
}

TEST(IsaM68k, WordGranularInstructionLengths) {
  std::vector<MicroOp> ops = {
      Mk(MKind::kPoll),
      Mk(MKind::kMov, MOperand::Reg(2), MOperand::Imm(123456)),
      Mk(MKind::kMov, MOperand::Slot(4), MOperand::Reg(9)),
  };
  EncodedCode enc = Encode(Arch::kM68k, ops);
  for (size_t i = 0; i + 1 < enc.pcs.size(); ++i) {
    EXPECT_EQ((enc.pcs[i + 1] - enc.pcs[i]) % 2, 0u) << "M68K instructions are words";
  }
}

TEST(IsaSparc, FixedWidthWords) {
  std::vector<MicroOp> ops = {
      Mk(MKind::kAdd, MOperand::Reg(17), MOperand::Reg(18), MOperand::Imm(-4096)),
      Mk(MKind::kMov, MOperand::Reg(17), MOperand::Slot(64)),   // load
      Mk(MKind::kMov, MOperand::Slot(64), MOperand::Reg(17)),   // store
      Mk(MKind::kSethi, MOperand::Reg(1), MOperand::Imm((1 << 19) - 1)),
      Mk(MKind::kOrImm, MOperand::Reg(1), MOperand::Reg(1), MOperand::Imm(0x1FFF)),
      Mk(MKind::kFMov, MOperand::FReg(0), MOperand::Slot(8)),
      Mk(MKind::kFAdd, MOperand::FReg(0), MOperand::FReg(0), MOperand::FReg(1)),
      Mk(MKind::kCvtIF, MOperand::FReg(1), MOperand::Reg(3)),
      Mk(MKind::kPoll),
  };
  ExpectRoundTrip(Arch::kSparc32, ops);
  EncodedCode enc = Encode(Arch::kSparc32, ops);
  for (size_t i = 0; i + 1 < enc.pcs.size(); ++i) {
    EXPECT_EQ(enc.pcs[i + 1] - enc.pcs[i], 4u);
  }
}

TEST(IsaSparcDeath, SlotOperandInAluRejected) {
  std::vector<MicroOp> ops = {
      Mk(MKind::kAdd, MOperand::Reg(17), MOperand::Slot(4), MOperand::Reg(18))};
  EXPECT_DEATH(Encode(Arch::kSparc32, ops), "register");
}

TEST(IsaSparcDeath, OversizedImmediateRejected) {
  std::vector<MicroOp> ops = {
      Mk(MKind::kMov, MOperand::Reg(17), MOperand::Imm(100000))};
  EXPECT_DEATH(Encode(Arch::kSparc32, ops), "13 bits");
}

TEST(Isa, BranchesRoundTripForwardAndBackward) {
  for (Arch arch : {Arch::kVax32, Arch::kM68k, Arch::kSparc32}) {
    std::vector<MicroOp> ops;
    ops.push_back(Mk(MKind::kPoll));
    MicroOp jf = Mk(MKind::kJf, MOperand::None(), MOperand::Reg(2));
    jf.target_index = 4;  // forward
    ops.push_back(jf);
    ops.push_back(Mk(MKind::kPoll));
    MicroOp jmp = Mk(MKind::kJmp);
    jmp.target_index = 0;  // backward
    ops.push_back(jmp);
    ops.push_back(Mk(MKind::kPoll));
    ExpectRoundTrip(arch, ops);
  }
}

TEST(Isa, CallTrapSitesRoundTrip) {
  for (Arch arch : {Arch::kVax32, Arch::kM68k, Arch::kSparc32}) {
    MicroOp call = Mk(MKind::kCall);
    call.site = 1234;
    MicroOp trap = Mk(MKind::kTrap);
    trap.site = 65535;
    ExpectRoundTrip(arch, {call, trap});
  }
}

TEST(Isa, FieldOpsRoundTrip) {
  for (Arch arch : {Arch::kVax32, Arch::kM68k, Arch::kSparc32}) {
    MOperand r = arch == Arch::kSparc32 ? MOperand::Reg(17) : MOperand::Slot(4);
    MicroOp get = Mk(MKind::kGetF, r);
    get.imm = 20;
    MicroOp set = Mk(MKind::kSetF, MOperand::None(), r);
    set.imm = 24;
    MicroOp getd = Mk(MKind::kGetFD, MOperand::Slot(8));
    getd.imm = 32;
    MicroOp setd = Mk(MKind::kSetFD, MOperand::None(), MOperand::Slot(8));
    setd.imm = 40;
    ExpectRoundTrip(arch, {get, set, getd, setd});
  }
}

TEST(Isa, SameProgramDifferentSizesPerArch) {
  // The same micro-op sequence (restricted to universally legal forms) encodes to
  // different lengths on each architecture — the root of the pc-mapping problem.
  std::vector<MicroOp> ops = {
      Mk(MKind::kMov, MOperand::Reg(3), MOperand::Reg(3)),
      Mk(MKind::kPoll),
      Mk(MKind::kRet),
  };
  EncodedCode vax = Encode(Arch::kVax32, ops);
  EncodedCode m68k = Encode(Arch::kM68k, ops);
  EncodedCode sparc = Encode(Arch::kSparc32, ops);
  EXPECT_NE(vax.bytes.size(), m68k.bytes.size());
  EXPECT_NE(m68k.bytes.size(), sparc.bytes.size());
  EXPECT_NE(vax.bytes, m68k.bytes);
}

TEST(Isa, CycleCostsReflectArchCharacter) {
  MicroOp mul = Mk(MKind::kMul, MOperand::Reg(3), MOperand::Reg(3), MOperand::Reg(4));
  // Multiplication: slow microcode on M68K, medium on VAX, fast-ish on SPARC.
  EXPECT_GT(CycleCost(Arch::kM68k, mul), CycleCost(Arch::kVax32, mul));
  EXPECT_GT(CycleCost(Arch::kVax32, mul), CycleCost(Arch::kSparc32, mul));
  // Memory operands cost extra on the CISCs.
  MicroOp add_rr = Mk(MKind::kAdd, MOperand::Reg(2), MOperand::Reg(2), MOperand::Reg(3));
  MicroOp add_mm = Mk(MKind::kAdd, MOperand::Slot(0), MOperand::Slot(0), MOperand::Slot(4));
  EXPECT_GT(CycleCost(Arch::kVax32, add_mm), CycleCost(Arch::kVax32, add_rr));
}

TEST(Isa, DecodeAllWalksWholeImage) {
  std::vector<MicroOp> ops = {
      Mk(MKind::kMov, MOperand::Reg(2), MOperand::Imm(42)),
      Mk(MKind::kNeg, MOperand::Reg(3), MOperand::Reg(2)),
      Mk(MKind::kRet, MOperand::None(), MOperand::Reg(3)),
  };
  for (Arch arch : {Arch::kVax32, Arch::kM68k}) {
    EncodedCode enc = Encode(arch, ops);
    std::vector<MicroOp> decoded = DecodeAll(arch, enc.bytes);
    ASSERT_EQ(decoded.size(), ops.size());
    EXPECT_EQ(decoded[0].a.v, 42);
  }
}

}  // namespace
}  // namespace hetm
