// Unit-level tests of the reliable channel: the seeded PRNG, fault bookkeeping
// counters, duplicate suppression, checksum-based corruption drops, and in-order
// delivery under heavy reordering. All scenarios drive a real two-node world with
// a remote-invocation ping-pong, then assert on CostMeter transport counters.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "src/emerald/system.h"
#include "src/net/fault_plan.h"
#include "src/net/transport.h"

namespace hetm {
namespace {

TEST(NetRngTest, SplitmixIsDeterministicAndSeedSensitive) {
  NetRng a(42);
  NetRng b(42);
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
  NetRng c(42);
  NetRng d(43);
  bool differed = false;
  for (int i = 0; i < 8; ++i) {
    differed |= c.Next() != d.Next();
  }
  EXPECT_TRUE(differed);
  NetRng e(7);
  for (int i = 0; i < 1000; ++i) {
    double x = e.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(FaultPlanTest, AnyRandomFaults) {
  FaultPlan plan;
  EXPECT_FALSE(plan.AnyRandomFaults());
  plan.crashes.push_back(CrashEvent{0, 1000.0, -1.0});
  EXPECT_FALSE(plan.AnyRandomFaults());  // crashes are scheduled, not random
  plan.drop_rate = 0.01;
  EXPECT_TRUE(plan.AnyRandomFaults());
}

// 20 remote invocation round trips: each loop iteration is a kInvoke/kReply pair
// across the wire, so the channel sees a steady stream of small data frames.
const char* kPingPong = R"(
    class Counter
      var n: Int
      op bump(k: Int): Int
        n := n + k
        return n
      end
    end
    main
      var c: Ref := new Counter
      move c to nodeat(1)
      var i: Int := 0
      while i < 20 do
        i := c.bump(1)
      end
      print i
    end
)";

struct WireTotals {
  uint64_t packets = 0;
  uint64_t retransmits = 0;
  uint64_t acks = 0;
  uint64_t dups = 0;
  uint64_t corrupt = 0;
};

WireTotals RunPingPong(const NetConfig& cfg, std::string* output) {
  EmeraldSystem sys;
  sys.AddNode(SparcStationSlc());
  sys.AddNode(VaxStation4000());
  EXPECT_TRUE(sys.Load(kPingPong));
  sys.world().EnableNet(cfg);
  EXPECT_TRUE(sys.Run()) << sys.error();
  *output = sys.output();
  WireTotals t;
  for (int i = 0; i < 2; ++i) {
    const CostCounters& c = sys.node(i).meter().counters();
    t.packets += c.packets_sent;
    t.retransmits += c.retransmits;
    t.acks += c.acks_sent;
    t.dups += c.dups_suppressed;
    t.corrupt += c.corrupt_dropped;
  }
  return t;
}

TEST(NetTransport, FaultFreeChannelNeverRetransmits) {
  NetConfig cfg;
  std::string out;
  WireTotals t = RunPingPong(cfg, &out);
  EXPECT_EQ(out, "20\n");
  EXPECT_GT(t.packets, 0u);
  EXPECT_GT(t.acks, 0u);
  EXPECT_EQ(t.retransmits, 0u);
  EXPECT_EQ(t.dups, 0u);
  EXPECT_EQ(t.corrupt, 0u);
}

TEST(NetTransport, DropsAreRepairedByRetransmission) {
  NetConfig cfg;
  cfg.fault.seed = 11;
  cfg.fault.drop_rate = 0.30;
  std::string out;
  WireTotals t = RunPingPong(cfg, &out);
  EXPECT_EQ(out, "20\n");
  EXPECT_GT(t.retransmits, 0u);
}

TEST(NetTransport, DuplicatesAreSuppressed) {
  NetConfig cfg;
  cfg.fault.seed = 12;
  cfg.fault.duplicate_rate = 0.80;
  std::string out;
  WireTotals t = RunPingPong(cfg, &out);
  EXPECT_EQ(out, "20\n");
  EXPECT_GT(t.dups, 0u);
  EXPECT_EQ(t.retransmits, 0u);  // nothing was lost, only doubled
}

TEST(NetTransport, CorruptFramesFailTheChecksumAndAreDropped) {
  NetConfig cfg;
  cfg.fault.seed = 13;
  cfg.fault.corrupt_rate = 0.30;
  std::string out;
  WireTotals t = RunPingPong(cfg, &out);
  // Corruption is caught below the decoders: the frame is dropped at the checksum,
  // retransmission repairs the stream, and the program never notices.
  EXPECT_EQ(out, "20\n");
  EXPECT_GT(t.corrupt, 0u);
  EXPECT_GT(t.retransmits, 0u);
}

TEST(NetTransport, HeavyReorderingStillDeliversInOrder) {
  NetConfig cfg;
  cfg.fault.seed = 14;
  cfg.fault.reorder_rate = 0.90;
  cfg.fault.max_extra_delay_us = 20000.0;
  std::string out;
  WireTotals t = RunPingPong(cfg, &out);
  // The FIFO channel re-sequences everything: results would be garbled (or the
  // run would error) if frames reached the node layer out of order.
  EXPECT_EQ(out, "20\n");
  EXPECT_GT(t.packets, 0u);
}

TEST(NetTransport, CombinedFaultsAreDeterministicPerSeed) {
  NetConfig cfg;
  cfg.fault.seed = 15;
  cfg.fault.drop_rate = 0.15;
  cfg.fault.duplicate_rate = 0.10;
  cfg.fault.corrupt_rate = 0.05;
  cfg.fault.reorder_rate = 0.30;
  std::string out1;
  std::string out2;
  WireTotals t1 = RunPingPong(cfg, &out1);
  WireTotals t2 = RunPingPong(cfg, &out2);
  EXPECT_EQ(out1, "20\n");
  EXPECT_EQ(out1, out2);
  EXPECT_EQ(t1.packets, t2.packets);
  EXPECT_EQ(t1.retransmits, t2.retransmits);
  EXPECT_EQ(t1.dups, t2.dups);
  EXPECT_EQ(t1.corrupt, t2.corrupt);
}

}  // namespace
}  // namespace hetm
