#include "src/arch/float_codec.h"

#include <cmath>
#include <cstring>

#include <gtest/gtest.h>

namespace hetm {
namespace {

TEST(VaxDFloat, ZeroIsAllZeroBits) {
  EXPECT_EQ(DoubleToVaxDBits(0.0), 0u);
  EXPECT_EQ(VaxDBitsToDouble(0), 0.0);
}

TEST(VaxDFloat, KnownEncodings) {
  // 1.0 = 0.5 * 2^1: sign 0, exponent 129, fraction 0.
  uint64_t one = DoubleToVaxDBits(1.0);
  EXPECT_EQ(one >> 63, 0u);
  EXPECT_EQ((one >> 55) & 0xFF, 129u);
  EXPECT_EQ(one & ((uint64_t{1} << 55) - 1), 0u);
  // 0.5 = 0.5 * 2^0: exponent 128.
  EXPECT_EQ((DoubleToVaxDBits(0.5) >> 55) & 0xFF, 128u);
  // -1.0: sign bit set, same exponent as 1.0.
  uint64_t minus_one = DoubleToVaxDBits(-1.0);
  EXPECT_EQ(minus_one >> 63, 1u);
  EXPECT_EQ((minus_one >> 55) & 0xFF, 129u);
}

TEST(VaxDFloat, RoundTripsExactly) {
  // D_floating has a 56-bit effective fraction — wider than an IEEE double's 53 —
  // so every finite double in range round trips bit-exactly.
  for (double v : {1.0, -1.0, 0.5, 3.141592653589793, -2.718281828459045, 1e-30, 1e30,
                   123456789.0, -0.015625, 6.28125}) {
    EXPECT_EQ(VaxDBitsToDouble(DoubleToVaxDBits(v)), v) << v;
  }
}

TEST(VaxDFloat, PseudoRandomSweep) {
  uint64_t x = 88172645463325252ull;
  for (int i = 0; i < 2000; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    // Scale into a safe exponent range for D_floating.
    double mant = static_cast<double>(x % 1000000007ull) / 1000000007.0 + 0.25;
    int exp = static_cast<int>(x % 200) - 100;
    double v = std::ldexp(mant, exp);
    if (x & 1) {
      v = -v;
    }
    EXPECT_EQ(VaxDBitsToDouble(DoubleToVaxDBits(v)), v);
  }
}

TEST(VaxDFloat, MemoryLayoutIsWordSwapped) {
  // The D-float image stores the most significant 16-bit word of the canonical bit
  // pattern first, little-endian within each word — neither pure LE nor pure BE.
  uint8_t vax_img[8];
  EncodeFloat64(1.0, FloatFormat::kVaxD, ByteOrder::kLittle, vax_img);
  uint8_t ieee_be[8];
  EncodeFloat64(1.0, FloatFormat::kIeee754, ByteOrder::kBig, ieee_be);
  uint8_t ieee_le[8];
  EncodeFloat64(1.0, FloatFormat::kIeee754, ByteOrder::kLittle, ieee_le);
  EXPECT_NE(std::memcmp(vax_img, ieee_be, 8), 0);
  EXPECT_NE(std::memcmp(vax_img, ieee_le, 8), 0);
  // Canonical bits of 1.0: 0x4080000000000000 -> words 4080,0000,0000,0000 ->
  // bytes (LE within word): 80 40 00 00 ...
  EXPECT_EQ(vax_img[0], 0x80);
  EXPECT_EQ(vax_img[1], 0x40);
  EXPECT_EQ(DecodeFloat64(vax_img, FloatFormat::kVaxD, ByteOrder::kLittle), 1.0);
}

TEST(IeeeCodec, ByteOrderRoundTrips) {
  for (ByteOrder order : {ByteOrder::kLittle, ByteOrder::kBig}) {
    for (double v : {0.0, -0.0, 1.5, -3.25, 1e100, -1e-100}) {
      uint8_t img[8];
      EncodeFloat64(v, FloatFormat::kIeee754, order, img);
      double back = DecodeFloat64(img, FloatFormat::kIeee754, order);
      EXPECT_EQ(std::signbit(back), std::signbit(v));
      EXPECT_EQ(back, v);
    }
  }
}

TEST(VaxDFloatDeath, RejectsNonFinite) {
  EXPECT_DEATH(DoubleToVaxDBits(std::nan("")), "NaN");
  EXPECT_DEATH(DoubleToVaxDBits(INFINITY), "NaN/Inf");
}

TEST(VaxDFloatDeath, RejectsOutOfRange) {
  // 2^200 exceeds the excess-128 exponent range.
  EXPECT_DEATH(DoubleToVaxDBits(std::ldexp(1.0, 200)), "range");
}

}  // namespace
}  // namespace hetm
