// Code-motion scheduler properties: the safety conditions positional bridging
// depends on (see src/compiler/optimizer.h and src/bridge/bridge.h).
#include "src/compiler/optimizer.h"

#include <gtest/gtest.h>

#include "src/compiler/compiler.h"
#include "src/compiler/irgen.h"
#include "src/compiler/lexer.h"
#include "src/compiler/parser.h"

namespace hetm {
namespace {

IrFunction GenOp(const std::string& src, const std::string& cls, const std::string& op) {
  LexResult lexed = Lex(src);
  ParseResult parsed = Parse(lexed.tokens);
  IrGenResult gen = GenerateIr(parsed.program);
  EXPECT_TRUE(gen.ok()) << (gen.errors.empty() ? "" : gen.errors[0]);
  int ci = gen.program.FindClass(cls);
  int oi = gen.program.classes[ci].FindOp(op);
  return std::move(gen.program.classes[ci].ops[oi]);
}

const char* kHoistable = R"(
  class H
    var f: Int
    op body(seed: Int): Int
      var a: Int := seed + 1
      print a
      var b: Int := seed * 2
      var c: Int := b + a
      print c
      var d: Int := c - b
      return d
    end
  end
  main
  end
)";

TEST(Optimizer, PermIsAValidPermutation) {
  IrFunction base = GenOp(kHoistable, "H", "body");
  ScheduleResult sched = ScheduleFunction(base);
  const int n = static_cast<int>(base.instrs.size());
  ASSERT_EQ(static_cast<int>(sched.perm.size()), n);
  std::vector<bool> seen(n, false);
  for (int p : sched.perm) {
    ASSERT_GE(p, 0);
    ASSERT_LT(p, n);
    EXPECT_FALSE(seen[p]);
    seen[p] = true;
  }
}

TEST(Optimizer, PermMatchesInstructionIdentity) {
  IrFunction base = GenOp(kHoistable, "H", "body");
  ScheduleResult sched = ScheduleFunction(base);
  for (size_t i = 0; i < sched.perm.size(); ++i) {
    const IrInstr& scheduled = sched.fn.instrs[i];
    const IrInstr& original = base.instrs[sched.perm[i]];
    EXPECT_EQ(scheduled.kind, original.kind);
    EXPECT_EQ(scheduled.dst, original.dst);
    EXPECT_EQ(scheduled.a, original.a);
    EXPECT_EQ(scheduled.imm, original.imm);
  }
}

TEST(Optimizer, ReplayingTransposesReproducesPerm) {
  IrFunction base = GenOp(kHoistable, "H", "body");
  ScheduleResult sched = ScheduleFunction(base);
  std::vector<int> perm(base.instrs.size());
  for (size_t i = 0; i < perm.size(); ++i) {
    perm[i] = static_cast<int>(i);
  }
  for (int p : sched.transposes) {
    std::swap(perm[p], perm[p + 1]);
  }
  EXPECT_EQ(perm, sched.perm);
  // And replaying them backwards recovers the identity (reversibility, the paper's
  // requirement on primitive code-motion operations).
  for (auto it = sched.transposes.rbegin(); it != sched.transposes.rend(); ++it) {
    std::swap(perm[*it], perm[*it + 1]);
  }
  for (size_t i = 0; i < perm.size(); ++i) {
    EXPECT_EQ(perm[i], static_cast<int>(i));
  }
}

TEST(Optimizer, StopsKeepTheirMutualOrderAndNumbers) {
  IrFunction base = GenOp(kHoistable, "H", "body");
  ScheduleResult sched = ScheduleFunction(base);
  std::vector<int> base_stops;
  std::vector<int> sched_stops;
  for (const IrInstr& in : base.instrs) {
    if (in.HasStop()) {
      base_stops.push_back(in.stop);
    }
  }
  for (const IrInstr& in : sched.fn.instrs) {
    if (in.HasStop()) {
      sched_stops.push_back(in.stop);
    }
  }
  EXPECT_EQ(base_stops, sched_stops);
}

TEST(Optimizer, EachOpCrossesAtMostOneStop) {
  IrFunction base = GenOp(kHoistable, "H", "body");
  ScheduleResult sched = ScheduleFunction(base);
  // For every instruction, count the stops between its base position and its
  // scheduled position: must be <= 1, and motion is always a hoist (earlier).
  auto stop_count_before = [](const IrFunction& fn, int pos) {
    int count = 0;
    for (int i = 0; i < pos; ++i) {
      if (IsStopKind(fn.instrs[i].kind)) {
        ++count;
      }
    }
    return count;
  };
  for (size_t i = 0; i < sched.perm.size(); ++i) {
    int base_pos = sched.perm[i];
    int moved_by_stops =
        stop_count_before(base, base_pos) - stop_count_before(sched.fn, static_cast<int>(i));
    EXPECT_GE(moved_by_stops, 0) << "sinking is never performed";
    EXPECT_LE(moved_by_stops, 1) << "at most one stop crossed";
  }
}

TEST(Optimizer, SomethingActuallyMoves) {
  IrFunction base = GenOp(kHoistable, "H", "body");
  ScheduleResult sched = ScheduleFunction(base);
  EXPECT_FALSE(sched.transposes.empty());
}

TEST(Optimizer, DependentOpsNeverHoistAboveTheirProducerStop) {
  // `got` is defined by the call; arithmetic on it must not cross the call stop.
  IrFunction base = GenOp(R"(
    class D
      var f: Int
      op helper(): Int
        return 1
      end
      op body(): Int
        var got: Int := self.helper()
        var dep: Int := got * 2
        return dep
      end
    end
    main
    end
  )",
                          "D", "body");
  ScheduleResult sched = ScheduleFunction(base);
  int call_pos = -1;
  int dep_pos = -1;
  for (size_t i = 0; i < sched.fn.instrs.size(); ++i) {
    if (sched.fn.instrs[i].kind == IrKind::kCall) {
      call_pos = static_cast<int>(i);
    }
    if (sched.fn.instrs[i].kind == IrKind::kMul) {
      dep_pos = static_cast<int>(i);
    }
  }
  ASSERT_GE(call_pos, 0);
  ASSERT_GE(dep_pos, 0);
  EXPECT_GT(dep_pos, call_pos);
}

TEST(Optimizer, ControlFlowNeverMoves) {
  IrFunction base = GenOp(R"(
    class L
      var f: Int
      op body(n: Int): Int
        var acc: Int := 0
        var i: Int := 0
        while i < n do
          print i
          acc := acc + i
          i := i + 1
        end
        return acc
      end
    end
    main
    end
  )",
                          "L", "body");
  ScheduleResult sched = ScheduleFunction(base);
  for (size_t i = 0; i < base.instrs.size(); ++i) {
    IrKind k = base.instrs[i].kind;
    if (k == IrKind::kLabel || k == IrKind::kJmp || k == IrKind::kJf || k == IrKind::kRet) {
      EXPECT_EQ(sched.perm[i], static_cast<int>(i))
          << "control instruction moved from " << i;
    }
  }
}

TEST(Optimizer, LivenessRecomputedOnSchedule) {
  IrFunction base = GenOp(kHoistable, "H", "body");
  ScheduleResult sched = ScheduleFunction(base);
  ASSERT_EQ(static_cast<int>(sched.fn.stop_live.size()), sched.fn.num_stops);
  // A hoisted op's destination is live at the stop it crossed in the O1 schedule
  // (it has been computed) even though it is dead there in the O0 schedule.
  // Find a transposed pure op and its crossed stop.
  bool checked = false;
  for (size_t i = 0; i + 1 < sched.fn.instrs.size(); ++i) {
    const IrInstr& in = sched.fn.instrs[i];
    const IrInstr& next = sched.fn.instrs[i + 1];
    if (IsMotionEligible(in.kind) && IsStopKind(next.kind) &&
        sched.perm[i] > sched.perm[i + 1] && in.dst >= 0) {
      // `in` was hoisted above `next`.
      EXPECT_TRUE(sched.fn.CellLiveAtStop(next.stop, in.dst));
      EXPECT_FALSE(base.CellLiveAtStop(next.stop, in.dst));
      checked = true;
      break;
    }
  }
  EXPECT_TRUE(checked);
}

TEST(Optimizer, CanTransposeRejectsConflicts) {
  IrFunction fn;
  fn.AddCell("x", ValueKind::kInt, false, false);
  fn.AddCell("y", ValueKind::kInt, false, false);
  IrInstr def{};
  def.kind = IrKind::kConstInt;
  def.dst = 0;
  IrInstr use{};
  use.kind = IrKind::kMov;
  use.dst = 1;
  use.a = 0;
  EXPECT_FALSE(CanTranspose(fn, def, use));  // RAW
  IrInstr other{};
  other.kind = IrKind::kConstInt;
  other.dst = 1;
  EXPECT_TRUE(CanTranspose(fn, def, other));  // independent
  IrInstr waw{};
  waw.kind = IrKind::kConstInt;
  waw.dst = 0;
  EXPECT_FALSE(CanTranspose(fn, def, waw));  // WAW
}

}  // namespace
}  // namespace hetm
