#include "src/compiler/parser.h"

#include <gtest/gtest.h>

#include "src/compiler/lexer.h"

namespace hetm {
namespace {

ParseResult ParseSrc(const std::string& src) {
  LexResult lexed = Lex(src);
  EXPECT_TRUE(lexed.errors.empty());
  return Parse(lexed.tokens);
}

TEST(Parser, ClassWithFieldsAndOps) {
  ParseResult r = ParseSrc(R"(
    class Account
      var balance: Int
      var owner: String
      op deposit(amount: Int): Int
        balance := balance + amount
        return balance
      end
      op reset()
        balance := 0
      end
    end
    main
    end
  )");
  ASSERT_TRUE(r.ok()) << r.errors[0];
  ASSERT_EQ(r.program.classes.size(), 1u);
  const ClassAst& cls = r.program.classes[0];
  EXPECT_EQ(cls.name, "Account");
  EXPECT_FALSE(cls.monitored);
  ASSERT_EQ(cls.fields.size(), 2u);
  EXPECT_EQ(cls.fields[0].name, "balance");
  EXPECT_EQ(cls.fields[0].kind, ValueKind::kInt);
  EXPECT_EQ(cls.fields[1].kind, ValueKind::kStr);
  ASSERT_EQ(cls.ops.size(), 2u);
  EXPECT_TRUE(cls.ops[0].has_result);
  EXPECT_EQ(cls.ops[0].params.size(), 1u);
  EXPECT_FALSE(cls.ops[1].has_result);
}

TEST(Parser, MonitorClass) {
  ParseResult r = ParseSrc("monitor class M\nend\nmain\nend");
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.program.classes[0].monitored);
}

TEST(Parser, PrecedenceMulOverAdd) {
  ParseResult r = ParseSrc("main\nvar x: Int := 1 + 2 * 3\nend");
  ASSERT_TRUE(r.ok());
  const Stmt& s = *r.program.main_body[0];
  ASSERT_EQ(s.kind, StmtKind::kVarDecl);
  const Expr& e = *s.expr;
  ASSERT_EQ(e.kind, ExprKind::kBinary);
  EXPECT_EQ(e.bin_op, BinOp::kAdd);
  EXPECT_EQ(e.rhs->kind, ExprKind::kBinary);
  EXPECT_EQ(e.rhs->bin_op, BinOp::kMul);
}

TEST(Parser, PrecedenceCmpOverAnd) {
  ParseResult r = ParseSrc("main\nvar b: Bool := 1 < 2 and 3 >= 4\nend");
  ASSERT_TRUE(r.ok());
  const Expr& e = *r.program.main_body[0]->expr;
  EXPECT_EQ(e.bin_op, BinOp::kAnd);
  EXPECT_EQ(e.lhs->bin_op, BinOp::kLt);
  EXPECT_EQ(e.rhs->bin_op, BinOp::kGe);
}

TEST(Parser, ParenthesesOverridePrecedence) {
  ParseResult r = ParseSrc("main\nvar x: Int := (1 + 2) * 3\nend");
  ASSERT_TRUE(r.ok());
  const Expr& e = *r.program.main_body[0]->expr;
  EXPECT_EQ(e.bin_op, BinOp::kMul);
  EXPECT_EQ(e.lhs->bin_op, BinOp::kAdd);
}

TEST(Parser, ChainedInvocationStructure) {
  ParseResult r = ParseSrc("main\nvar a: Ref := nil\nvar x: Int := a.f().g(1)\nend");
  ASSERT_TRUE(r.ok()) << r.errors[0];
  const Expr& e = *r.program.main_body[1]->expr;
  ASSERT_EQ(e.kind, ExprKind::kInvoke);
  EXPECT_EQ(e.text, "g");
  ASSERT_EQ(e.args.size(), 1u);
  ASSERT_EQ(e.lhs->kind, ExprKind::kInvoke);
  EXPECT_EQ(e.lhs->text, "f");
}

TEST(Parser, IfElseifElse) {
  ParseResult r = ParseSrc(R"(
    main
      if true then
        print 1
      elseif false then
        print 2
      elseif true then
        print 3
      else
        print 4
      end
    end
  )");
  ASSERT_TRUE(r.ok()) << r.errors[0];
  const Stmt& s = *r.program.main_body[0];
  ASSERT_EQ(s.kind, StmtKind::kIf);
  EXPECT_EQ(s.arms.size(), 3u);
  EXPECT_EQ(s.else_body.size(), 1u);
}

TEST(Parser, WhileMoveSpawnPrint) {
  ParseResult r = ParseSrc(R"(
    main
      var x: Ref := nil
      while true do
        move x to here()
        spawn x.tick()
        print "hi"
      end
    end
  )");
  ASSERT_TRUE(r.ok()) << r.errors[0];
  const Stmt& loop = *r.program.main_body[1];
  ASSERT_EQ(loop.kind, StmtKind::kWhile);
  EXPECT_EQ(loop.body[0]->kind, StmtKind::kMove);
  EXPECT_EQ(loop.body[1]->kind, StmtKind::kSpawn);
  EXPECT_EQ(loop.body[2]->kind, StmtKind::kPrint);
}

TEST(Parser, BuiltinArityChecked) {
  ParseResult r = ParseSrc("main\nvar n: Node := locate()\nend");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.errors[0].find("expects 1"), std::string::npos);
}

TEST(Parser, SpawnRequiresInvocation) {
  ParseResult r = ParseSrc("main\nspawn 42\nend");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.errors[0].find("invocation"), std::string::npos);
}

TEST(Parser, UnknownTypeIsError) {
  ParseResult r = ParseSrc("main\nvar x: Float := 1\nend");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.errors[0].find("unknown type"), std::string::npos);
}

TEST(Parser, MissingEndIsError) {
  ParseResult r = ParseSrc("class C\nmain\nend");
  ASSERT_FALSE(r.ok());
}

TEST(Parser, UnaryOperators) {
  ParseResult r = ParseSrc("main\nvar x: Int := -(3 + 4)\nvar b: Bool := not true\nend");
  ASSERT_TRUE(r.ok()) << r.errors[0];
  EXPECT_EQ(r.program.main_body[0]->expr->kind, ExprKind::kUnary);
  EXPECT_EQ(r.program.main_body[0]->expr->unary_op, '-');
  EXPECT_EQ(r.program.main_body[1]->expr->unary_op, '!');
}

TEST(Parser, ReturnWithAndWithoutValue) {
  ParseResult r = ParseSrc(R"(
    class C
      var junk: Int
      op f(): Int
        return 42
      end
      op g()
        return
      end
    end
    main
    end
  )");
  ASSERT_TRUE(r.ok()) << r.errors[0];
  EXPECT_NE(r.program.classes[0].ops[0].body[0]->expr, nullptr);
  EXPECT_EQ(r.program.classes[0].ops[1].body[0]->expr, nullptr);
}

}  // namespace
}  // namespace hetm
