// Wire codec round trips and conversion-cost accounting.
#include "src/mobility/wire.h"

#include <gtest/gtest.h>

#include "src/arch/calibration.h"

namespace hetm {
namespace {

CostMeter MakeMeter() { return CostMeter(SparcStationSlc()); }
CostMeter MakeVaxMeter() { return CostMeter(VaxStation4000()); }

class WireRoundTrip
    : public ::testing::TestWithParam<std::tuple<ConversionStrategy, Arch>> {};

TEST_P(WireRoundTrip, PrimitivesAndValues) {
  auto [strategy, arch] = GetParam();
  CostMeter wm(SparcStationSlc());
  WireWriter w(strategy, arch, &wm);
  w.U8(0x5A);
  w.U16(0xBEEF);
  w.U32(0xDEADBEEF);
  w.I32(-42);
  w.F64(-123.456789);
  w.Str("heterogeneous");
  w.TaggedValue(Value::Int(-7));
  w.TaggedValue(Value::Real(2.5));
  w.TaggedValue(Value::Bool(true));
  w.TaggedValue(Value::Str(0x30000001));
  w.TaggedValue(Value::Ref(0x40100001));
  w.TaggedValue(Value::NodeRef(NodeOid(2)));
  w.FinishMessage();
  std::vector<uint8_t> bytes = w.Take();

  CostMeter rm(SparcStationSlc());
  WireReader r(strategy, arch, &rm, bytes);
  EXPECT_EQ(r.U8(), 0x5A);
  EXPECT_EQ(r.U16(), 0xBEEF);
  EXPECT_EQ(r.U32(), 0xDEADBEEFu);
  EXPECT_EQ(r.I32(), -42);
  EXPECT_EQ(r.F64(), -123.456789);
  EXPECT_EQ(r.Str(), "heterogeneous");
  EXPECT_EQ(r.TaggedValue().i, -7);
  EXPECT_EQ(r.TaggedValue().r, 2.5);
  EXPECT_TRUE(r.TaggedValue().AsBool());
  EXPECT_EQ(r.TaggedValue().oid, 0x30000001u);
  EXPECT_EQ(r.TaggedValue().oid, 0x40100001u);
  EXPECT_EQ(r.TaggedValue().oid, NodeOid(2));
  r.FinishMessage();
  EXPECT_TRUE(r.AtEnd());
}

INSTANTIATE_TEST_SUITE_P(
    AllStrategiesAndArchs, WireRoundTrip,
    ::testing::Combine(::testing::Values(ConversionStrategy::kRaw,
                                         ConversionStrategy::kNaive,
                                         ConversionStrategy::kFast),
                       ::testing::Values(Arch::kVax32, Arch::kM68k, Arch::kSparc32)));

TEST(Wire, RawModeWritesSenderByteOrder) {
  CostMeter m = MakeMeter();
  {
    WireWriter w(ConversionStrategy::kRaw, Arch::kVax32, &m);
    w.U32(0x11223344);
    std::vector<uint8_t> bytes = w.Take();
    EXPECT_EQ(bytes[0], 0x44);  // little-endian on the wire
  }
  {
    WireWriter w(ConversionStrategy::kRaw, Arch::kSparc32, &m);
    w.U32(0x11223344);
    std::vector<uint8_t> bytes = w.Take();
    EXPECT_EQ(bytes[0], 0x11);  // big-endian on the wire
  }
}

TEST(Wire, EnhancedModesUseNetworkOrderRegardlessOfArch) {
  CostMeter m = MakeMeter();
  for (Arch arch : {Arch::kVax32, Arch::kM68k, Arch::kSparc32}) {
    WireWriter w(ConversionStrategy::kNaive, arch, &m);
    w.U32(0x11223344);
    std::vector<uint8_t> bytes = w.Take();
    EXPECT_EQ(bytes[0], 0x11) << ArchName(arch);
  }
}

TEST(Wire, RawFloatUsesMachineFormat) {
  // A VAX raw float image differs from the IEEE image; both decode back exactly.
  CostMeter m = MakeVaxMeter();
  WireWriter wv(ConversionStrategy::kRaw, Arch::kVax32, &m);
  wv.F64(6.28125);
  std::vector<uint8_t> vax_bytes = wv.Take();
  WireWriter ws(ConversionStrategy::kRaw, Arch::kSparc32, &m);
  ws.F64(6.28125);
  std::vector<uint8_t> sparc_bytes = ws.Take();
  EXPECT_NE(vax_bytes, sparc_bytes);
  WireReader rv(ConversionStrategy::kRaw, Arch::kVax32, &m, vax_bytes);
  EXPECT_EQ(rv.F64(), 6.28125);
}

TEST(Wire, NaiveChargesPerCallAndCountsCalls) {
  CostMeter m = MakeMeter();
  WireWriter w(ConversionStrategy::kNaive, Arch::kSparc32, &m);
  uint64_t before = m.cycles();
  w.U32(7);
  // One value call + two leaf (2-bytes-each) calls.
  EXPECT_EQ(m.counters().conv_calls, 3u);
  EXPECT_EQ(m.counters().conv_bytes, 4u);
  EXPECT_EQ(m.cycles() - before, 3 * kConvCallCycles + 4 * kConvPerByteCycles);
}

TEST(Wire, NaiveCallsPerByteMatchPaperRange) {
  // "An average of 1-2 calls of conversion procedures are performed for each byte."
  CostMeter m = MakeMeter();
  WireWriter w(ConversionStrategy::kNaive, Arch::kSparc32, &m);
  for (int i = 0; i < 50; ++i) {
    w.TaggedValue(Value::Int(i));
  }
  double per_byte = static_cast<double>(m.counters().conv_calls) /
                    static_cast<double>(m.counters().conv_bytes);
  EXPECT_GE(per_byte, 0.5);
  EXPECT_LE(per_byte, 2.0);
}

TEST(Wire, FastChargesSetupPerMessageAndLittlePerByte) {
  CostMeter naive_m = MakeMeter();
  CostMeter fast_m = MakeMeter();
  WireWriter naive(ConversionStrategy::kNaive, Arch::kSparc32, &naive_m);
  WireWriter fast(ConversionStrategy::kFast, Arch::kSparc32, &fast_m);
  for (int i = 0; i < 100; ++i) {
    naive.U32(static_cast<uint32_t>(i));
    fast.U32(static_cast<uint32_t>(i));
  }
  naive.FinishMessage();
  fast.FinishMessage();
  EXPECT_LT(fast_m.cycles(), naive_m.cycles());
  EXPECT_EQ(fast_m.counters().conv_calls, 1u);  // one bulk routine per message
}

TEST(Wire, VaxFloatConversionChargedOnlyInEnhancedModes) {
  CostMeter m = MakeVaxMeter();
  WireWriter w(ConversionStrategy::kNaive, Arch::kVax32, &m);
  w.F64(1.5);
  EXPECT_EQ(m.counters().float_conversions, 1u);
  CostMeter m2 = MakeVaxMeter();
  WireWriter w2(ConversionStrategy::kRaw, Arch::kVax32, &m2);
  w2.F64(1.5);
  EXPECT_EQ(m2.counters().float_conversions, 0u);
  // IEEE machines pay no float format conversion even in enhanced mode.
  CostMeter m3 = MakeMeter();
  WireWriter w3(ConversionStrategy::kNaive, Arch::kSparc32, &m3);
  w3.F64(1.5);
  EXPECT_EQ(m3.counters().float_conversions, 0u);
}

TEST(Wire, CrossArchEnhancedTransfer) {
  // Write on a VAX, read on a SPARC: the machine-independent format carries the
  // value across byte order and float format.
  CostMeter vm = MakeVaxMeter();
  WireWriter w(ConversionStrategy::kNaive, Arch::kVax32, &vm);
  w.TaggedValue(Value::Real(-0.015625));
  w.TaggedValue(Value::Int(-2000000000));
  std::vector<uint8_t> bytes = w.Take();
  CostMeter sm = MakeMeter();
  WireReader r(ConversionStrategy::kNaive, Arch::kSparc32, &sm, bytes);
  EXPECT_EQ(r.TaggedValue().r, -0.015625);
  EXPECT_EQ(r.TaggedValue().i, -2000000000);
}

}  // namespace
}  // namespace hetm
