// The replay-divergence bisector (DESIGN.md section 15):
//
//  * The chain property: chain[s] folds chain[s-1] in and idle slices repeat
//    their predecessor, so equal cells certify equal PREFIXES — and the
//    earliest divergent (ring, slice) cell brackets the first differing
//    emission.
//  * Two same-seed runs produce identical chains (no divergence found); two
//    different-seed runs under loss diverge, and the focused event-window diff
//    names the first differing TracePoint pair inside the bracketed window.
//  * The persisted JSON round-trips exactly and rejects malformed input.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "src/emerald/system.h"
#include "src/net/transport.h"
#include "src/obs/divergence.h"
#include "src/obs/trace.h"

namespace hetm {
namespace {

std::string TourSource(int rounds) {
  return R"(
    class Tourist
      var pad: Int
      op tour(rounds: Int): Int
        var check: Int := 1
        var i: Int := 0
        while i < rounds do
          move self to nodeat((i + 1) % 3)
          check := (check * 31 + i) % 1000003
          i := i + 1
        end
        return check
      end
    end
    main
      var t: Ref := new Tourist
      print t.tour()" +
         std::to_string(rounds) + R"()
    end
)";
}

struct TourRun {
  DigestChainFile chains;
  std::vector<TraceEvent> events;
};

TourRun RunTour(uint64_t seed, double drop, double slice_us) {
  EmeraldSystem sys;
  sys.AddNode(SparcStationSlc());
  sys.AddNode(Sun3_100());
  sys.AddNode(VaxStation4000());
  EXPECT_TRUE(sys.Load(TourSource(40)));
  NetConfig cfg;
  cfg.fault.seed = seed;
  cfg.fault.drop_rate = drop;
  sys.world().EnableNet(cfg);
  sys.world().tracer().EnableSliceDigests(slice_us);
  EXPECT_TRUE(sys.Run()) << sys.error();
  TourRun r;
  r.chains.slice_us = slice_us;
  r.chains.seed = seed;
  r.chains.chains = sys.world().tracer().DigestChains(sys.world().NowMaxUs());
  r.events = sys.world().tracer().Snapshot();
  return r;
}

// Same seed, same chains: the bisector certifies full agreement.
TEST(ObsDivergence, SameSeedNoDivergence) {
  TourRun a = RunTour(21, 0.10, 5'000.0);
  TourRun b = RunTour(21, 0.10, 5'000.0);
  ASSERT_FALSE(a.chains.chains.empty());
  DivergencePoint p = FindFirstDivergence(a.chains, b.chains);
  EXPECT_FALSE(p.found);
  // And the persisted form agrees too.
  EXPECT_EQ(DigestChainsToJson(a.chains), DigestChainsToJson(b.chains));
}

// Different fault seeds under heavy loss: the runs fork, the bisector names a
// (node, slice) cell, and the focused diff inside that window produces the
// first differing TracePoint pair.
TEST(ObsDivergence, DifferentSeedPinpoints) {
  const double slice_us = 5'000.0;
  TourRun a = RunTour(7, 0.25, slice_us);
  TourRun b = RunTour(9, 0.25, slice_us);
  DivergencePoint p = FindFirstDivergence(a.chains, b.chains);
  ASSERT_TRUE(p.found);
  ASSERT_GE(p.ring, 0);
  ASSERT_GE(p.slice, 0);
  // Every later cell of the divergent ring differs too (the chain property).
  const std::vector<uint64_t>& ca = a.chains.chains[p.ring];
  const std::vector<uint64_t>& cb = b.chains.chains[p.ring];
  for (size_t s = p.slice; s < ca.size() && s < cb.size(); ++s) {
    EXPECT_NE(ca[s], cb[s]) << "chain re-converged at slice " << s;
  }
  int node = p.ring - 1;
  std::string diff = DiffEventWindow(a.events, b.events, node,
                                     p.slice * slice_us, (p.slice + 1) * slice_us);
  EXPECT_FALSE(diff.empty()) << "bracketed window contains no differing event";
}

// The persisted JSON round-trips bit-exactly, including zero and all-ones
// digests, and malformed input is rejected.
TEST(ObsDivergence, JsonRoundTrip) {
  DigestChainFile f;
  f.slice_us = 2500.0;
  f.seed = 0xDEADBEEFCAFEF00Dull;
  f.chains = {{0ull, 1ull, 0xFFFFFFFFFFFFFFFFull},
              {},
              {1469598103934665603ull, 42ull}};
  std::string json = DigestChainsToJson(f);
  DigestChainFile back;
  ASSERT_TRUE(ParseDigestChains(json, &back));
  EXPECT_DOUBLE_EQ(back.slice_us, f.slice_us);
  EXPECT_EQ(back.seed, f.seed);
  EXPECT_EQ(back.chains, f.chains);
  EXPECT_EQ(DigestChainsToJson(back), json);

  DigestChainFile junk;
  EXPECT_FALSE(ParseDigestChains("", &junk));
  EXPECT_FALSE(ParseDigestChains("{\"slice_us\":", &junk));
  EXPECT_FALSE(ParseDigestChains("[1,2,3]", &junk));
  EXPECT_FALSE(ParseDigestChains(json.substr(0, json.size() / 2), &junk));
}

// FindFirstDivergence picks the earliest slice, breaks ties by lowest ring,
// pads short chains with their tail value, and treats a ring present in only
// one file as divergent at its first slice.
TEST(ObsDivergence, ChainPrefixProperty) {
  DigestChainFile a;
  a.slice_us = 1000.0;
  a.chains = {{10, 11, 12, 13}, {20, 21, 22, 23}, {30, 31, 32, 33}};
  DigestChainFile b = a;

  // Identical: nothing found.
  EXPECT_FALSE(FindFirstDivergence(a, b).found);

  // Earliest slice wins across rings.
  b.chains[2][1] = 99;  // ring 2 diverges at slice 1
  b.chains[1][3] = 98;  // ring 1 diverges later, at slice 3
  DivergencePoint p = FindFirstDivergence(a, b);
  ASSERT_TRUE(p.found);
  EXPECT_EQ(p.ring, 2);
  EXPECT_EQ(p.slice, 1);

  // Same slice in two rings: lowest ring wins.
  b = a;
  b.chains[1][2] = 97;
  b.chains[2][2] = 96;
  p = FindFirstDivergence(a, b);
  ASSERT_TRUE(p.found);
  EXPECT_EQ(p.ring, 1);
  EXPECT_EQ(p.slice, 2);

  // A short chain whose tail value matches the longer side's idle tail is NOT
  // a divergence (idle slices repeat their predecessor).
  b = a;
  b.chains[0] = {10, 11, 12, 13, 13, 13};
  EXPECT_FALSE(FindFirstDivergence(a, b).found);

  // ...but a tail that moved on is.
  b.chains[0] = {10, 11, 12, 13, 14};
  p = FindFirstDivergence(a, b);
  ASSERT_TRUE(p.found);
  EXPECT_EQ(p.ring, 0);
  EXPECT_EQ(p.slice, 4);

  // A ring present in only one file diverges at its first slice.
  b = a;
  b.chains.push_back({40, 41});
  p = FindFirstDivergence(a, b);
  ASSERT_TRUE(p.found);
  EXPECT_EQ(p.ring, 3);
  EXPECT_EQ(p.slice, 0);
}

}  // namespace
}  // namespace hetm
