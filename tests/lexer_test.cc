#include "src/compiler/lexer.h"

#include <gtest/gtest.h>

namespace hetm {
namespace {

std::vector<Tok> Kinds(const std::string& src) {
  LexResult r = Lex(src);
  EXPECT_TRUE(r.errors.empty()) << (r.errors.empty() ? "" : r.errors[0]);
  std::vector<Tok> kinds;
  for (const Token& t : r.tokens) {
    kinds.push_back(t.kind);
  }
  return kinds;
}

TEST(Lexer, KeywordsAndIdentifiers) {
  auto kinds = Kinds("class monitor var op end main kilroy _x $t1");
  EXPECT_EQ(kinds, (std::vector<Tok>{Tok::kClass, Tok::kMonitor, Tok::kVar, Tok::kOp,
                                     Tok::kEnd, Tok::kMain, Tok::kIdent, Tok::kIdent,
                                     Tok::kIdent, Tok::kEof}));
}

TEST(Lexer, IntegerLiterals) {
  LexResult r = Lex("0 42 123456789");
  ASSERT_EQ(r.tokens.size(), 4u);
  EXPECT_EQ(r.tokens[0].int_value, 0);
  EXPECT_EQ(r.tokens[1].int_value, 42);
  EXPECT_EQ(r.tokens[2].int_value, 123456789);
}

TEST(Lexer, RealLiterals) {
  LexResult r = Lex("3.25 1e6 2.5e-3 7E+2");
  ASSERT_EQ(r.tokens.size(), 5u);
  EXPECT_EQ(r.tokens[0].kind, Tok::kRealLit);
  EXPECT_DOUBLE_EQ(r.tokens[0].real_value, 3.25);
  EXPECT_DOUBLE_EQ(r.tokens[1].real_value, 1e6);
  EXPECT_DOUBLE_EQ(r.tokens[2].real_value, 2.5e-3);
  EXPECT_DOUBLE_EQ(r.tokens[3].real_value, 700.0);
}

TEST(Lexer, IntFollowedByDotIsNotReal) {
  // `x.op()` after an integer: `1.foo` lexes as int, dot, ident.
  auto kinds = Kinds("1.foo");
  EXPECT_EQ(kinds,
            (std::vector<Tok>{Tok::kIntLit, Tok::kDot, Tok::kIdent, Tok::kEof}));
}

TEST(Lexer, StringEscapes) {
  LexResult r = Lex(R"("a\nb\t\"q\"\\")");
  ASSERT_TRUE(r.errors.empty());
  EXPECT_EQ(r.tokens[0].text, "a\nb\t\"q\"\\");
}

TEST(Lexer, Operators) {
  auto kinds = Kinds(":= == != <= >= < > + - * / % ( ) , : . !");
  EXPECT_EQ(kinds, (std::vector<Tok>{
                       Tok::kAssign, Tok::kEq, Tok::kNe, Tok::kLe, Tok::kGe, Tok::kLt,
                       Tok::kGt, Tok::kPlus, Tok::kMinus, Tok::kStar, Tok::kSlash,
                       Tok::kPercent, Tok::kLParen, Tok::kRParen, Tok::kComma,
                       Tok::kColon, Tok::kDot, Tok::kBang, Tok::kEof}));
}

TEST(Lexer, CommentsRunToEndOfLine) {
  auto kinds = Kinds("a // everything here is ignored := class\nb");
  EXPECT_EQ(kinds, (std::vector<Tok>{Tok::kIdent, Tok::kIdent, Tok::kEof}));
}

TEST(Lexer, LineNumbersTracked) {
  LexResult r = Lex("a\nb\n  c");
  EXPECT_EQ(r.tokens[0].line, 1);
  EXPECT_EQ(r.tokens[1].line, 2);
  EXPECT_EQ(r.tokens[2].line, 3);
  EXPECT_EQ(r.tokens[2].col, 3);
}

TEST(Lexer, ErrorOnSingleEquals) {
  LexResult r = Lex("a = b");
  ASSERT_EQ(r.errors.size(), 1u);
  EXPECT_NE(r.errors[0].find(":="), std::string::npos);
}

TEST(Lexer, ErrorOnUnterminatedString) {
  LexResult r = Lex("\"oops");
  ASSERT_FALSE(r.errors.empty());
  EXPECT_NE(r.errors[0].find("unterminated"), std::string::npos);
}

TEST(Lexer, ErrorOnBadCharacter) {
  LexResult r = Lex("a @ b");
  ASSERT_FALSE(r.errors.empty());
}

TEST(Lexer, SpawnKeyword) {
  auto kinds = Kinds("spawn x.go()");
  EXPECT_EQ(kinds[0], Tok::kSpawn);
}

}  // namespace
}  // namespace hetm
