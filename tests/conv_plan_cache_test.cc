// Plan-cache churn: LRU eviction/refill determinism, hit/miss/eviction
// accounting, and stale-plan invalidation when the program database redefines a
// template under a reused code OID.
#include "src/conv/plan_cache.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "src/compiler/compiler.h"
#include "src/compiler/program_db.h"
#include "src/mobility/object_codec.h"

namespace hetm {
namespace {

// Compiles `n` distinct single-class programs in one shared database (distinct
// program names => distinct code OIDs), each with a different field mix, and
// returns their classes (keeping the programs alive via `keep`).
std::vector<const CompiledClass*> DistinctClasses(
    int n, std::vector<std::shared_ptr<const CompiledProgram>>* keep) {
  static ProgramDatabase db;
  std::vector<const CompiledClass*> out;
  for (int i = 0; i < n; ++i) {
    std::ostringstream src;
    src << "class C\n";
    for (int f = 0; f <= i; ++f) {
      src << "  var f" << f << (f % 2 == 0 ? ": Int\n" : ": Real\n");
    }
    src << "end\nmain\nend\n";
    CompileResult r = CompileSource(src.str(), "prog" + std::to_string(i), db);
    EXPECT_TRUE(r.ok());
    keep->push_back(r.program);
    for (const auto& cls : r.program->classes) {
      if (cls->name == "C") {
        out.push_back(cls.get());
      }
    }
  }
  return out;
}

TEST(ConvPlanCache, HitsServeTheSamePlanObject) {
  std::vector<std::shared_ptr<const CompiledProgram>> keep;
  auto classes = DistinctClasses(1, &keep);
  PlanCache cache;
  CostMeter meter{SparcStationSlc()};
  auto compile = [&] { return CompileObjectPlan(*classes[0], Arch::kSparc32); };
  auto a = cache.GetOrCompile(ObjectPlanKey(*classes[0], Arch::kSparc32), &meter,
                              compile);
  auto b = cache.GetOrCompile(ObjectPlanKey(*classes[0], Arch::kSparc32), &meter,
                              compile);
  EXPECT_EQ(a.get(), b.get());
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(ConvPlanCache, CompileCostIsChargedOnlyOnMiss) {
  std::vector<std::shared_ptr<const CompiledProgram>> keep;
  auto classes = DistinctClasses(1, &keep);
  PlanCache cache;
  CostMeter meter{SparcStationSlc()};
  auto compile = [&] { return CompileObjectPlan(*classes[0], Arch::kVax32); };
  PlanKey key = ObjectPlanKey(*classes[0], Arch::kVax32);
  uint64_t before = meter.cycles();
  auto plan = cache.GetOrCompile(key, &meter, compile);
  uint64_t miss_cost = meter.cycles() - before;
  EXPECT_EQ(miss_cost, plan->compile_cycles);
  before = meter.cycles();
  cache.GetOrCompile(key, &meter, compile);
  EXPECT_EQ(meter.cycles() - before, 0u);
}

TEST(ConvPlanCache, EvictionAndRefillReturnIdenticalPlans) {
  std::vector<std::shared_ptr<const CompiledProgram>> keep;
  auto classes = DistinctClasses(4, &keep);
  PlanCache cache(/*capacity=*/2);
  CostMeter meter{SparcStationSlc()};

  std::vector<ConversionPlan> first;
  for (const CompiledClass* cls : classes) {
    first.push_back(*cache.GetOrCompile(
        ObjectPlanKey(*cls, Arch::kM68k), &meter,
        [&] { return CompileObjectPlan(*cls, Arch::kM68k); }));
  }
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.misses(), 4u);
  EXPECT_EQ(cache.evictions(), 2u);

  // Refill the evicted entries: recompilation is deterministic, the plans are
  // structurally identical to the first generation.
  for (size_t i = 0; i < classes.size(); ++i) {
    auto again = cache.GetOrCompile(
        ObjectPlanKey(*classes[i], Arch::kM68k), &meter,
        [&] { return CompileObjectPlan(*classes[i], Arch::kM68k); });
    EXPECT_TRUE(again->SameOps(first[i])) << "class " << i;
    EXPECT_EQ(again->template_hash, first[i].template_hash);
  }
}

TEST(ConvPlanCache, LruOrderPrefersRecentlyUsedEntries) {
  std::vector<std::shared_ptr<const CompiledProgram>> keep;
  auto classes = DistinctClasses(3, &keep);
  PlanCache cache(/*capacity=*/2);
  CostMeter meter{SparcStationSlc()};
  auto get = [&](int i) {
    return cache.GetOrCompile(ObjectPlanKey(*classes[i], Arch::kSparc32), &meter, [&] {
      return CompileObjectPlan(*classes[i], Arch::kSparc32);
    });
  };
  get(0);
  get(1);
  get(0);        // 0 is now MRU
  get(2);        // evicts 1, not 0
  uint64_t h = cache.hits();
  get(0);        // still resident
  EXPECT_EQ(cache.hits(), h + 1);
  get(1);        // was evicted: a miss
  EXPECT_EQ(cache.misses(), 4u);
}

TEST(ConvPlanCache, SetCapacityShrinksImmediately) {
  std::vector<std::shared_ptr<const CompiledProgram>> keep;
  auto classes = DistinctClasses(4, &keep);
  PlanCache cache;
  CostMeter meter{SparcStationSlc()};
  for (const CompiledClass* cls : classes) {
    cache.GetOrCompile(ObjectPlanKey(*cls, Arch::kVax32), &meter,
                       [&] { return CompileObjectPlan(*cls, Arch::kVax32); });
  }
  EXPECT_EQ(cache.size(), 4u);
  cache.SetCapacity(1);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.evictions(), 3u);
}

TEST(ConvPlanCache, RedefinedTemplateInvalidatesTheCachedPlan) {
  // The program database reuses a code OID when a same-named program is
  // recompiled — the repository model of section 3.4. The plan cache must not
  // serve the old layout's plan for the new class.
  ProgramDatabase db;
  CompileResult v1 = CompileSource(R"(
    class C
      var a: Int
    end
    main
    end
  )", "prog", db);
  ASSERT_TRUE(v1.ok());
  const CompiledClass* cls1 = nullptr;
  for (const auto& cls : v1.program->classes) {
    if (cls->name == "C") cls1 = cls.get();
  }
  ASSERT_NE(cls1, nullptr);

  PlanCache cache;
  CostMeter meter{SparcStationSlc()};
  auto plan1 = cache.GetOrCompile(ObjectPlanKey(*cls1, Arch::kVax32), &meter, [&] {
    return CompileObjectPlan(*cls1, Arch::kVax32);
  });
  EXPECT_EQ(cache.size(), 1u);

  CompileResult v2 = CompileSource(R"(
    class C
      var a: Real
      var b: Int
    end
    main
    end
  )", "prog", db);
  ASSERT_TRUE(v2.ok());
  const CompiledClass* cls2 = nullptr;
  for (const auto& cls : v2.program->classes) {
    if (cls->name == "C") cls2 = cls.get();
  }
  ASSERT_NE(cls2, nullptr);
  ASSERT_EQ(cls2->code_oid, cls1->code_oid);  // the OID really was reused

  // Different content, same identity: the lookup misses, recompiles, and drops
  // the stale entry instead of letting it linger until LRU pressure.
  PlanKey key2 = ObjectPlanKey(*cls2, Arch::kVax32);
  EXPECT_NE(key2.template_hash, ObjectPlanKey(*cls1, Arch::kVax32).template_hash);
  auto plan2 = cache.GetOrCompile(key2, &meter, [&] {
    return CompileObjectPlan(*cls2, Arch::kVax32);
  });
  EXPECT_EQ(cache.misses(), 2u);
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_FALSE(plan2->SameOps(*plan1));
  EXPECT_EQ(plan2->machine_bytes, MakeFieldImage(Arch::kVax32, *cls2).size());
}

}  // namespace
}  // namespace hetm
