// OID synchronization across recompilations (section 3.4's program database).
#include "src/compiler/program_db.h"

#include <gtest/gtest.h>

#include "src/compiler/compiler.h"

namespace hetm {
namespace {

const char* kProgram = R"(
  class A
    var f: Int
    op go(): Int
      var s: String := "alpha"
      print s
      return 1
    end
  end
  class B
    var f: Int
    op go(): Int
      var s: String := "beta"
      print s
      return 2
    end
  end
  main
  end
)";

TEST(ProgramDb, RecompilationYieldsIdenticalOids) {
  ProgramDatabase db;
  CompileResult first = CompileSource(kProgram, "prog", db);
  CompileResult second = CompileSource(kProgram, "prog", db);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  ASSERT_EQ(first.program->classes.size(), second.program->classes.size());
  for (size_t i = 0; i < first.program->classes.size(); ++i) {
    EXPECT_EQ(first.program->classes[i]->code_oid, second.program->classes[i]->code_oid);
    EXPECT_EQ(first.program->classes[i]->literal_oids,
              second.program->classes[i]->literal_oids);
  }
}

TEST(ProgramDb, DistinctProgramsGetDistinctOids) {
  ProgramDatabase db;
  CompileResult a = CompileSource(kProgram, "prog-a", db);
  CompileResult b = CompileSource(kProgram, "prog-b", db);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_NE(a.program->classes[0]->code_oid, b.program->classes[0]->code_oid);
}

TEST(ProgramDb, OidsAreCodeOids) {
  CompileResult r = CompileSource(kProgram);
  ASSERT_TRUE(r.ok());
  for (const auto& cls : r.program->classes) {
    EXPECT_TRUE(IsCodeOid(cls->code_oid));
    for (Oid lit : cls->literal_oids) {
      EXPECT_TRUE(IsLiteralOid(lit));
    }
  }
}

TEST(ProgramDb, LiteralPoolsAreDeduplicated) {
  CompileResult r = CompileSource(R"(
    main
      print "same"
      print "same"
      print "different"
    end
  )");
  ASSERT_TRUE(r.ok());
  const CompiledClass& main_cls = *r.program->classes[r.program->main_class];
  EXPECT_EQ(main_cls.string_literals.size(), 2u);
}

TEST(ProgramDb, OidPartitioningHelpers) {
  EXPECT_TRUE(IsNodeOid(NodeOid(3)));
  EXPECT_EQ(NodeIndexOfOid(NodeOid(3)), 3);
  Oid data = MakeDataOid(5, 42);
  EXPECT_TRUE(IsDataOid(data));
  EXPECT_EQ(BirthNodeOfDataOid(data), 5);
  EXPECT_FALSE(IsDataOid(NodeOid(1)));
  EXPECT_FALSE(IsNodeOid(data));
}

TEST(ProgramDb, SameOidsAllowCrossArchCodeLookup) {
  // The whole point: one OID names the class on every architecture, with the
  // repository key carrying the arch dimension (here: per-arch code blobs in one
  // CompiledClass).
  CompileResult r = CompileSource(kProgram);
  ASSERT_TRUE(r.ok());
  const CompiledClass& cls = *r.program->classes[0];
  for (int a = 0; a < kNumArchs; ++a) {
    for (int lvl = 0; lvl < kNumOptLevels; ++lvl) {
      EXPECT_FALSE(cls.ops[0].code[a][lvl].code.empty());
    }
  }
}

}  // namespace
}  // namespace hetm
