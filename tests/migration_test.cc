// Heterogeneous object and native-code thread migration — the paper's core claims.
#include <gtest/gtest.h>

#include "src/emerald/system.h"

namespace hetm {
namespace {

// A thread executing inside an object keeps running, with every kind of live
// variable intact, as the object hops across all three architectures (VAX
// little-endian D-float CISC, M68K big-endian IEEE two-operand, SPARC big-endian
// IEEE load/store). State crosses byte orders, float formats, register files,
// frame layouts and instruction encodings, and the thread resumes native code
// after every hop.
TEST(Migration, KilroyTourAcrossAllArchitectures) {
  EmeraldSystem sys;
  sys.AddNode(SparcStationSlc());  // node 0
  sys.AddNode(Sun3_100());         // node 1
  sys.AddNode(VaxStation4000());   // node 2
  sys.AddNode(Hp9000_433s());      // node 3
  ASSERT_TRUE(sys.Load(R"(
    class Kilroy
      var hops: Int
      op visit(): Int
        var tag: String := "kilroy"
        var sum: Int := 100
        var pi: Real := 3.140625
        var ok: Bool := true
        move self to nodeat(1)
        hops := hops + 1
        sum := sum + 11
        print concat(tag, " was here")
        move self to nodeat(2)
        hops := hops + 1
        sum := sum + 22
        pi := pi * 2.0
        print sum
        move self to nodeat(3)
        hops := hops + 1
        print pi
        print ok
        move self to nodeat(0)
        hops := hops + 1
        print tag
        return hops
      end
    end
    main
      var k: Ref := new Kilroy
      print k.visit()
    end
  )")) << (sys.errors().empty() ? "" : sys.errors()[0]);
  ASSERT_TRUE(sys.Run()) << sys.error();
  EXPECT_EQ(sys.output(),
            "kilroy was here\n"
            "133\n"
            "6.28125\n"
            "true\n"
            "kilroy\n"
            "4\n");
  // The object really moved: it ends up resident on node 0 again after the tour,
  // and each intermediate node holds a forwarding hint, not the object.
  EXPECT_EQ(sys.node(1).segments().size(), 0u);
  EXPECT_EQ(sys.node(2).segments().size(), 0u);
  EXPECT_EQ(sys.world().CheckInvariants(), "");
}

// The paper's Example 1: object X on node A invokes an operation in Y on node B;
// the operation's effect is that X is moved to node C. When the thread returns from
// Y's operation, execution resumes on node C, where X now resides — part of the
// call stack migrated from A to C while suspended mid-call.
TEST(Migration, Example1ReturnResumesWhereObjectMoved) {
  EmeraldSystem sys;
  sys.AddNode(SparcStationSlc());  // node A = 0
  sys.AddNode(Sun3_100());         // node B = 1
  sys.AddNode(VaxStation4000());   // node C = 2
  ASSERT_TRUE(sys.Load(R"(
    class Y
      var calls: Int
      op poke(x: Ref): Int
        calls := calls + 1
        move x to nodeat(2)
        return calls
      end
    end
    class X
      var state: Int
      op go(y: Ref): Int
        state := 77
        var r: Int := y.poke(self)
        // We resume HERE, on node C, with our live variables intact.
        print state
        print r
        print locate(self) == nodeat(2)
        return state + r
      end
    end
    main
      var y: Ref := new Y
      move y to nodeat(1)
      var x: Ref := new X
      print x.go(y)
    end
  )")) << (sys.errors().empty() ? "" : sys.errors()[0]);
  ASSERT_TRUE(sys.Run()) << sys.error();
  EXPECT_EQ(sys.output(), "77\n1\ntrue\n78\n");
  EXPECT_EQ(sys.world().CheckInvariants(), "");
}

// Fields of every kind survive relayout across all three architectures.
TEST(Migration, ObjectFieldsSurviveRelayout) {
  EmeraldSystem sys;
  sys.AddNode(VaxStation4000());
  sys.AddNode(SparcStationSlc());
  sys.AddNode(Sun3_100());
  ASSERT_TRUE(sys.Load(R"(
    class Bag
      var i: Int
      var r: Real
      var b: Bool
      var s: String
      var peer: Ref
      op fill(p: Ref)
        i := -2000000123
        r := 0.015625
        b := true
        s := "sphinx of black quartz"
        peer := p
      end
      op check(p: Ref): Bool
        return (i == -2000000123) and (r == 0.015625) and b
           and (s == "sphinx of black quartz") and (peer == p)
      end
    end
    main
      var other: Ref := new Bag
      var bag: Ref := new Bag
      bag.fill(other)
      move bag to nodeat(1)
      print bag.check(other)
      move bag to nodeat(2)
      print bag.check(other)
      move bag to nodeat(0)
      print bag.check(other)
    end
  )")) << (sys.errors().empty() ? "" : sys.errors()[0]);
  ASSERT_TRUE(sys.Run()) << sys.error();
  EXPECT_EQ(sys.output(), "true\ntrue\ntrue\n");
  EXPECT_EQ(sys.world().CheckInvariants(), "");
}

// Moving an object moves the monitor state with it; a monitored object keeps
// excluding properly after migrating (and the VAX side uses the atomic REMQUE
// monitor exit with its exit-only bus stop).
TEST(Migration, MonitoredObjectMoves) {
  EmeraldSystem sys;
  sys.AddNode(VaxStation4000());
  sys.AddNode(SparcStationSlc());
  ASSERT_TRUE(sys.Load(R"(
    monitor class SafeCounter
      var n: Int
      op bump(): Int
        n := n + 1
        return n
      end
    end
    main
      var c: Ref := new SafeCounter
      print c.bump()
      move c to nodeat(1)
      print c.bump()
      print c.bump()
      move c to nodeat(0)
      print c.bump()
    end
  )")) << (sys.errors().empty() ? "" : sys.errors()[0]);
  ASSERT_TRUE(sys.Run()) << sys.error();
  EXPECT_EQ(sys.output(), "1\n2\n3\n4\n");
  EXPECT_EQ(sys.world().CheckInvariants(), "");
}

// A thread suspended deep in a call chain migrates in the middle: the moving
// object's activation record sits *below* the currently executing one, so the
// stack is cut and the two fragments end up on different nodes, reconnected by
// the cross-node return.
TEST(Migration, MidStackCutAndCrossNodeReturn) {
  EmeraldSystem sys;
  sys.AddNode(SparcStationSlc());
  sys.AddNode(Sun3_100());
  sys.AddNode(VaxStation4000());
  ASSERT_TRUE(sys.Load(R"(
    class Inner
      var junk: Int
      op work(outer: Ref): Int
        // Move the OUTER object (whose activation is below ours) away mid-call.
        move outer to nodeat(2)
        return 10
      end
    end
    class Outer
      var token: Int
      op run(inner: Ref): Int
        token := 5
        var got: Int := inner.work(self)
        // Our frame migrated to node 2 while we were waiting for inner.work;
        // the return must find us there.
        print locate(self) == nodeat(2)
        return got + token
      end
    end
    main
      var inner: Ref := new Inner
      move inner to nodeat(1)
      var outer: Ref := new Outer
      print outer.run(inner)
    end
  )")) << (sys.errors().empty() ? "" : sys.errors()[0]);
  ASSERT_TRUE(sys.Run()) << sys.error();
  EXPECT_EQ(sys.output(), "true\n15\n");
  EXPECT_EQ(sys.world().CheckInvariants(), "");
}

// Moving between identical machines under the original (raw, homogeneous) system
// variant works and produces the same answers as the enhanced system.
TEST(Migration, OriginalHomogeneousSystemVariant) {
  for (ConversionStrategy strategy :
       {ConversionStrategy::kRaw, ConversionStrategy::kNaive, ConversionStrategy::kFast}) {
    EmeraldSystem sys(strategy);
    sys.AddNode(SparcStationSlc());
    sys.AddNode(SparcStationSlc());
    ASSERT_TRUE(sys.Load(R"(
      class Pinger
        var count: Int
        op ping(rounds: Int): Int
          var i: Int := 0
          var stamp: Real := 0.5
          while i < rounds do
            move self to nodeat(1)
            move self to nodeat(0)
            stamp := stamp + 0.25
            i := i + 1
          end
          count := i
          print stamp
          return count
        end
      end
      main
        var p: Ref := new Pinger
        print p.ping(3)
      end
    )")) << (sys.errors().empty() ? "" : sys.errors()[0]);
    ASSERT_TRUE(sys.Run()) << sys.error();
    EXPECT_EQ(sys.output(), "1.25\n3\n");
    EXPECT_EQ(sys.world().CheckInvariants(), "");
  }
}

}  // namespace
}  // namespace hetm
