#include "src/support/byte_buffer.h"

#include <gtest/gtest.h>

namespace hetm {
namespace {

TEST(ByteWriter, SequentialWritesAndSizes) {
  ByteWriter w(ByteOrder::kBig);
  w.U8(0xAB);
  w.U16(0x1234);
  w.U32(0xDEADBEEF);
  w.U64(0x0102030405060708ull);
  EXPECT_EQ(w.size(), 1u + 2 + 4 + 8);
  ByteReader r(w.bytes(), ByteOrder::kBig);
  EXPECT_EQ(r.U8(), 0xAB);
  EXPECT_EQ(r.U16(), 0x1234);
  EXPECT_EQ(r.U32(), 0xDEADBEEFu);
  EXPECT_EQ(r.U64(), 0x0102030405060708ull);
  EXPECT_TRUE(r.AtEnd());
}

TEST(ByteWriter, SignedAndFloat) {
  ByteWriter w(ByteOrder::kLittle);
  w.I32(-123456);
  w.F64(-2.5e10);
  ByteReader r(w.bytes(), ByteOrder::kLittle);
  EXPECT_EQ(r.I32(), -123456);
  EXPECT_EQ(r.F64(), -2.5e10);
}

TEST(ByteWriter, LengthPrefixedString) {
  ByteWriter w(ByteOrder::kBig);
  w.Str("kilroy was here");
  w.Str("");
  w.Str(std::string("embedded\0nul", 12));
  ByteReader r(w.bytes(), ByteOrder::kBig);
  EXPECT_EQ(r.Str(), "kilroy was here");
  EXPECT_EQ(r.Str(), "");
  EXPECT_EQ(r.Str(), std::string("embedded\0nul", 12));
}

TEST(ByteWriter, PatchFixesBranchDisplacement) {
  ByteWriter w(ByteOrder::kLittle);
  w.U8(0x42);
  size_t at = w.size();
  w.U16(0);  // placeholder
  w.U32(0xCAFEBABE);
  w.PatchU16(at, 0xBEEF);
  ByteReader r(w.bytes(), ByteOrder::kLittle);
  EXPECT_EQ(r.U8(), 0x42);
  EXPECT_EQ(r.U16(), 0xBEEF);
  EXPECT_EQ(r.U32(), 0xCAFEBABEu);
}

TEST(ByteReader, SeekAndRemaining) {
  ByteWriter w(ByteOrder::kBig);
  for (int i = 0; i < 16; ++i) {
    w.U8(static_cast<uint8_t>(i));
  }
  ByteReader r(w.bytes(), ByteOrder::kBig);
  EXPECT_EQ(r.remaining(), 16u);
  r.Seek(8);
  EXPECT_EQ(r.U8(), 8);
  EXPECT_EQ(r.remaining(), 7u);
}

TEST(ByteReader, RawAndTakeBytes) {
  ByteWriter w(ByteOrder::kBig);
  w.Bytes(reinterpret_cast<const uint8_t*>("abcdef"), 6);
  ByteReader r(w.bytes(), ByteOrder::kBig);
  uint8_t buf[3];
  r.RawBytes(buf, 3);
  EXPECT_EQ(buf[0], 'a');
  EXPECT_EQ(buf[2], 'c');
  std::vector<uint8_t> rest = r.TakeBytes(3);
  EXPECT_EQ(rest, (std::vector<uint8_t>{'d', 'e', 'f'}));
}

TEST(ByteReaderDeath, OverrunAborts) {
  ByteWriter w(ByteOrder::kBig);
  w.U16(7);
  ByteReader r(w.bytes(), ByteOrder::kBig);
  r.U16();
  EXPECT_DEATH(r.U8(), "HETM_CHECK");
}

TEST(ByteWriter, TakeMovesBuffer) {
  ByteWriter w(ByteOrder::kBig);
  w.U32(1);
  std::vector<uint8_t> bytes = w.Take();
  EXPECT_EQ(bytes.size(), 4u);
}

}  // namespace
}  // namespace hetm
