// Randomized encode/decode round trips: any legal instruction stream must survive
// encoding bit-exactly on every architecture.
#include <gtest/gtest.h>

#include "src/isa/isa.h"

namespace hetm {
namespace {

class Rng {
 public:
  explicit Rng(uint64_t seed) : x_(seed * 0x9E3779B97F4A7C15ull + 1) {}
  uint64_t Next() {
    x_ ^= x_ << 13;
    x_ ^= x_ >> 7;
    x_ ^= x_ << 17;
    return x_;
  }
  int Range(int n) { return static_cast<int>(Next() % static_cast<uint64_t>(n)); }

 private:
  uint64_t x_;
};

// Generates an architecture-legal random instruction.
MicroOp RandomOp(Arch arch, Rng& rng) {
  auto reg = [&]() {
    return MOperand::Reg(arch == Arch::kSparc32 ? rng.Range(32) : rng.Range(16));
  };
  auto slot = [&]() { return MOperand::Slot(rng.Range(1024) * 4); };
  auto imm13 = [&]() { return MOperand::Imm(rng.Range(8191) - 4095); };
  auto imm32 = [&]() { return MOperand::Imm(static_cast<int32_t>(rng.Next())); };
  auto int_src = [&]() -> MOperand {
    switch (rng.Range(3)) {
      case 0: return reg();
      case 1: return slot();
      default: return arch == Arch::kSparc32 ? imm13() : imm32();
    }
  };
  auto int_dst = [&]() -> MOperand {
    return arch == Arch::kSparc32 || rng.Range(2) == 0 ? reg() : slot();
  };

  MicroOp m;
  switch (rng.Range(10)) {
    case 0: {  // ALU binary
      MKind kinds[] = {MKind::kAdd, MKind::kSub, MKind::kMul, MKind::kDiv,
                       MKind::kCmpLt, MKind::kAnd};
      m.kind = kinds[rng.Range(6)];
      if (arch == Arch::kSparc32) {
        m.dst = reg();
        m.a = reg();
        m.b = rng.Range(2) != 0 ? reg() : imm13();
      } else if (arch == Arch::kM68k) {
        bool two_op = m.kind == MKind::kAdd || m.kind == MKind::kSub || m.kind == MKind::kAnd;
        m.dst = int_dst();
        m.a = two_op ? m.dst : int_src();
        m.b = int_src();
      } else {
        m.dst = int_dst();
        m.a = int_src();
        m.b = int_src();
      }
      break;
    }
    case 1:  // mov
      m.kind = MKind::kMov;
      if (arch == Arch::kSparc32) {
        if (rng.Range(2) != 0) {
          m.dst = reg();
          m.a = rng.Range(2) != 0 ? reg() : (rng.Range(2) != 0 ? imm13() : slot());
        } else {
          m.dst = slot();
          m.a = reg();
        }
      } else {
        m.dst = int_dst();
        m.a = int_src();
      }
      break;
    case 2:  // unary
      m.kind = rng.Range(2) != 0 ? MKind::kNeg : MKind::kNot;
      if (arch == Arch::kSparc32) {
        m.dst = reg();
        m.a = reg();
      } else {
        m.dst = int_dst();
        m.a = arch == Arch::kM68k ? m.dst : int_src();
      }
      break;
    case 3:  // float
      if (arch == Arch::kSparc32) {
        m.kind = MKind::kFAdd;
        m.dst = MOperand::FReg(rng.Range(4));
        m.a = MOperand::FReg(rng.Range(4));
        m.b = MOperand::FReg(rng.Range(4));
      } else {
        m.kind = MKind::kFAdd;
        m.dst = slot();
        m.a = arch == Arch::kM68k ? m.dst : slot();
        m.b = slot();
      }
      break;
    case 4:  // float literal
      m.kind = MKind::kFMovImm;
      m.dst = arch == Arch::kSparc32 ? MOperand::FReg(rng.Range(4)) : slot();
      m.fimm = static_cast<double>(rng.Range(1 << 20)) / 64.0 - 1024.0;
      break;
    case 5:  // field access
      m.kind = rng.Range(2) != 0 ? MKind::kGetF : MKind::kSetF;
      if (m.kind == MKind::kGetF) {
        m.dst = arch == Arch::kSparc32 ? reg() : int_dst();
      } else {
        m.a = arch == Arch::kSparc32 ? reg() : int_dst();
      }
      m.imm = rng.Range(1024) * 4;
      break;
    case 6:  // call/trap
      m.kind = rng.Range(2) != 0 ? MKind::kCall : MKind::kTrap;
      m.site = rng.Range(65536);
      break;
    case 7:  // ret
      m.kind = MKind::kRet;
      m.a = rng.Range(3) == 0 ? MOperand::None() : (rng.Range(2) != 0 ? reg() : slot());
      break;
    case 8:  // poll
      m.kind = MKind::kPoll;
      break;
    default:  // sethi/orimm (SPARC), monitor ops elsewhere
      if (arch == Arch::kSparc32) {
        m.kind = MKind::kSethi;
        m.dst = reg();
        m.a = MOperand::Imm(rng.Range(1 << 19));
      } else if (arch == Arch::kVax32) {
        m.kind = MKind::kRemque;
        m.a = int_src();
      } else {
        m.kind = MKind::kMonExitTrap;
        m.a = int_dst();
      }
      break;
  }
  return m;
}

class IsaFuzz : public ::testing::TestWithParam<std::tuple<Arch, int>> {};

TEST_P(IsaFuzz, RandomStreamsRoundTrip) {
  auto [arch, seed] = GetParam();
  Rng rng(static_cast<uint64_t>(seed) + static_cast<uint64_t>(arch) * 1000);
  std::vector<MicroOp> ops;
  for (int i = 0; i < 200; ++i) {
    ops.push_back(RandomOp(arch, rng));
  }
  // Sprinkle branches with valid targets.
  for (int i = 0; i < 10; ++i) {
    MicroOp j;
    j.kind = rng.Range(2) != 0 ? MKind::kJmp : MKind::kJf;
    if (j.kind == MKind::kJf) {
      j.a = MOperand::Reg(arch == Arch::kSparc32 ? rng.Range(32) : rng.Range(16));
    }
    int pos = rng.Range(static_cast<int>(ops.size()));
    j.target_index = rng.Range(static_cast<int>(ops.size()) + 1);
    ops.insert(ops.begin() + pos, j);
    // Inserting shifts indices; clamp all targets to valid range.
    for (MicroOp& m : ops) {
      if ((m.kind == MKind::kJmp || m.kind == MKind::kJf) &&
          m.target_index >= static_cast<int>(ops.size())) {
        m.target_index = static_cast<int>(ops.size()) - 1;
      }
    }
  }

  EncodedCode enc = Encode(arch, ops);
  ASSERT_EQ(enc.pcs.size(), ops.size() + 1);
  for (size_t i = 0; i < ops.size(); ++i) {
    MicroOp d = DecodeAt(arch, enc.bytes, enc.pcs[i]);
    ASSERT_EQ(d.kind, ops[i].kind) << ArchName(arch) << " @" << i;
    EXPECT_EQ(d.dst, ops[i].dst) << ArchName(arch) << " @" << i;
    EXPECT_EQ(d.a, ops[i].a) << ArchName(arch) << " @" << i;
    EXPECT_EQ(d.b, ops[i].b) << ArchName(arch) << " @" << i;
    EXPECT_EQ(d.length, enc.pcs[i + 1] - enc.pcs[i]);
    if (d.kind == MKind::kJmp || d.kind == MKind::kJf) {
      EXPECT_EQ(d.target_pc, enc.pcs[ops[i].target_index]);
    }
    if (d.kind == MKind::kFMovImm) {
      EXPECT_EQ(d.fimm, ops[i].fimm);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, IsaFuzz,
    ::testing::Combine(::testing::Values(Arch::kVax32, Arch::kM68k, Arch::kSparc32),
                       ::testing::Range(1, 6)),
    [](const ::testing::TestParamInfo<std::tuple<Arch, int>>& info) {
      return std::string(ArchName(std::get<0>(info.param))) + "_seed" +
             std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace hetm
