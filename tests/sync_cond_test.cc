// Single-node condition-variable semantics (DESIGN.md §16): `cond` declarations
// in a monitor class with `wait` / `signal` / `broadcast` statements. Wait is a
// retry bus stop — the caller releases the monitor completely (saving its
// reentrant depth), parks FIFO on the named queue, and re-acquires through the
// entry queue after a signal (Mesa signal-and-continue). These tests pin the
// semantics before any migration gets involved; sync_group_test.cc moves the
// monitors mid-contention.
#include <gtest/gtest.h>

#include "src/emerald/system.h"

namespace hetm {
namespace {

// `wait` must release the monitor: the probe op can only run — and the program
// can only terminate — while the spawned thread is parked inside `await`. The
// spin on isarmed() also proves re-acquisition: `armed` is written under the
// monitor immediately before the wait.
TEST(SyncCond, WaitReleasesAndReacquiresMonitor) {
  EmeraldSystem sys;
  sys.AddNode(SparcStationSlc());
  ASSERT_TRUE(sys.Load(R"(
    monitor class Gate
      var ready: Int
      var armed: Int
      var result: Int
      cond go
      op await()
        armed := 1
        while ready == 0 do
          wait go
        end
        result := result + 1
      end
      op isarmed(): Int
        return armed
      end
      op open()
        ready := 1
        signal go
      end
      op done(): Int
        return result
      end
    end
    main
      var g: Ref := new Gate
      spawn g.await()
      var a: Int := 0
      while a == 0 do
        a := g.isarmed()
      end
      g.open()
      var d: Int := 0
      while d == 0 do
        d := g.done()
      end
      print d
    end
  )")) << (sys.errors().empty() ? "" : sys.errors()[0]);
  ASSERT_TRUE(sys.Run()) << sys.error();
  EXPECT_EQ(sys.output(), "1\n");
  const CostCounters& c = sys.node(0).meter().counters();
  EXPECT_GE(c.sync_waits, 1u);
  EXPECT_GE(c.sync_signals, 1u);
}

// Three waiters park in a known order (each spawn is gated on the previous
// one being queued); three signals must release them first-in-first-out, so
// the digit accumulator reads 123 and nothing else.
const char* kFifoSource = R"(
    monitor class Q
      var order: Int
      var waiting: Int
      var released: Int
      cond c
      op park(id: Int)
        waiting := waiting + 1
        wait c
        order := order * 10 + id
        released := released + 1
      end
      op nwaiting(): Int
        return waiting
      end
      op nreleased(): Int
        return released
      end
      op pulse()
        signal c
      end
      op blast()
        broadcast c
      end
      op value(): Int
        return order
      end
    end
    main
      var q: Ref := new Q
      spawn q.park(1)
      var w: Int := 0
      while w < 1 do
        w := q.nwaiting()
      end
      spawn q.park(2)
      while w < 2 do
        w := q.nwaiting()
      end
      spawn q.park(3)
      while w < 3 do
        w := q.nwaiting()
      end
)";

TEST(SyncCond, SignalReleasesWaitersInFifoOrder) {
  EmeraldSystem sys;
  sys.AddNode(SparcStationSlc());
  ASSERT_TRUE(sys.Load(std::string(kFifoSource) + R"(
      q.pulse()
      var r: Int := 0
      while r < 1 do
        r := q.nreleased()
      end
      q.pulse()
      while r < 2 do
        r := q.nreleased()
      end
      q.pulse()
      while r < 3 do
        r := q.nreleased()
      end
      print q.value()
    end
  )")) << (sys.errors().empty() ? "" : sys.errors()[0]);
  ASSERT_TRUE(sys.Run()) << sys.error();
  EXPECT_EQ(sys.output(), "123\n");
}

// One broadcast wakes every waiter; they re-acquire through the entry queue in
// their original cond-queue order, so the accumulator still reads 123.
TEST(SyncCond, BroadcastWakesAllInOrder) {
  EmeraldSystem sys;
  sys.AddNode(SparcStationSlc());
  ASSERT_TRUE(sys.Load(std::string(kFifoSource) + R"(
      q.blast()
      var r: Int := 0
      while r < 3 do
        r := q.nreleased()
      end
      print q.value()
    end
  )")) << (sys.errors().empty() ? "" : sys.errors()[0]);
  ASSERT_TRUE(sys.Run()) << sys.error();
  EXPECT_EQ(sys.output(), "123\n");
  const CostCounters& c = sys.node(0).meter().counters();
  EXPECT_EQ(c.sync_broadcasts, 1u);
  EXPECT_EQ(c.sync_waits, 3u);
}

// Signal and broadcast on an empty queue are counted no-ops: nothing wakes,
// nothing deadlocks, the signaling op runs to completion.
TEST(SyncCond, SignalOnEmptyQueueIsNoop) {
  EmeraldSystem sys;
  sys.AddNode(SparcStationSlc());
  ASSERT_TRUE(sys.Load(R"(
    monitor class E
      var n: Int
      cond c
      op pulse(): Int
        signal c
        broadcast c
        n := n + 1
        return n
      end
    end
    main
      var e: Ref := new E
      print e.pulse()
      print e.pulse()
    end
  )")) << (sys.errors().empty() ? "" : sys.errors()[0]);
  ASSERT_TRUE(sys.Run()) << sys.error();
  EXPECT_EQ(sys.output(), "1\n2\n");
  const CostCounters& c = sys.node(0).meter().counters();
  EXPECT_EQ(c.sync_signals, 2u);
  EXPECT_EQ(c.sync_broadcasts, 2u);
  EXPECT_EQ(c.sync_waits, 0u);
}

// A full producer/consumer handoff through a one-slot buffer is deterministic:
// the same program replays to the identical trace digest, output and end time —
// no spurious wakeups, no schedule-dependent signal delivery.
TEST(SyncCond, ProducerConsumerReplaysBitIdentically) {
  const char* source = R"(
    monitor class Buffer
      var slot: Int
      var full: Int
      cond notfull
      cond notempty
      op put(v: Int)
        while full == 1 do
          wait notfull
        end
        slot := v
        full := 1
        signal notempty
      end
      op get(): Int
        while full == 0 do
          wait notempty
        end
        full := 0
        signal notfull
        return slot
      end
    end
    monitor class Sink
      var sum: Int
      var count: Int
      cond donec
      op add(v: Int)
        sum := sum + v
        count := count + 1
        signal donec
      end
      op waitdone(n: Int)
        while count < n do
          wait donec
        end
      end
      op total(): Int
        return sum
      end
    end
    class Producer
      var junk: Int
      op produce(b: Ref, n: Int)
        var i: Int := 1
        while i <= n do
          b.put(i)
          i := i + 1
        end
      end
    end
    class Consumer
      var junk: Int
      op consume(b: Ref, s: Ref, n: Int)
        var i: Int := 0
        while i < n do
          var v: Int := b.get()
          s.add(v)
          i := i + 1
        end
      end
    end
    main
      var b: Ref := new Buffer
      var s: Ref := new Sink
      var p: Ref := new Producer
      var c: Ref := new Consumer
      spawn p.produce(b, 15)
      spawn c.consume(b, s, 15)
      s.waitdone(15)
      print s.total()
    end
  )";
  auto run = [&](std::string* output, uint64_t* digest, double* end_us) {
    EmeraldSystem sys;
    sys.AddNode(SparcStationSlc());
    ASSERT_TRUE(sys.Load(source)) << (sys.errors().empty() ? "" : sys.errors()[0]);
    ASSERT_TRUE(sys.Run()) << sys.error();
    *output = sys.output();
    *digest = sys.world().tracer().digest();
    *end_us = sys.world().NowMaxUs();
  };
  std::string out_a, out_b;
  uint64_t dig_a = 0, dig_b = 0;
  double end_a = 0.0, end_b = 0.0;
  run(&out_a, &dig_a, &end_a);
  run(&out_b, &dig_b, &end_b);
  EXPECT_EQ(out_a, "120\n");  // 1 + 2 + ... + 15
  EXPECT_EQ(out_a, out_b);
  EXPECT_EQ(dig_a, dig_b);
  EXPECT_EQ(end_a, end_b);
}

// Reentrant wait: the waiter holds the monitor at depth 2 (a monitored op
// calling a second op on self); wait must release the *whole* depth — or the
// signaler could never enter — and restore it on re-acquisition.
TEST(SyncCond, WaitReleasesReentrantDepthAndRestoresIt) {
  EmeraldSystem sys;
  sys.AddNode(SparcStationSlc());
  ASSERT_TRUE(sys.Load(R"(
    monitor class R
      var ready: Int
      var armed: Int
      var result: Int
      cond go
      op inner()
        armed := 1
        while ready == 0 do
          wait go
        end
        result := result + 1
      end
      op outer()
        self.inner()
        result := result + 10
      end
      op isarmed(): Int
        return armed
      end
      op open()
        ready := 1
        signal go
      end
      op done(): Int
        return result
      end
    end
    main
      var r: Ref := new R
      spawn r.outer()
      var a: Int := 0
      while a == 0 do
        a := r.isarmed()
      end
      r.open()
      var d: Int := 0
      while d < 11 do
        d := r.done()
      end
      print d
    end
  )")) << (sys.errors().empty() ? "" : sys.errors()[0]);
  ASSERT_TRUE(sys.Run()) << sys.error();
  EXPECT_EQ(sys.output(), "11\n");
}

// Compile-time rules: `cond` members only in monitor classes, wait/signal only
// inside monitor operations, and the named condition must exist.
TEST(SyncCond, CompileErrorsForMisplacedCondConstructs) {
  {
    EmeraldSystem sys;
    sys.AddNode(SparcStationSlc());
    EXPECT_FALSE(sys.Load(R"(
      class C
        var n: Int
        cond c
        op f()
          n := 1
        end
      end
      main
        print 0
      end
    )"));
    ASSERT_FALSE(sys.errors().empty());
    EXPECT_NE(sys.errors()[0].find("monitor"), std::string::npos);
  }
  {
    EmeraldSystem sys;
    sys.AddNode(SparcStationSlc());
    EXPECT_FALSE(sys.Load(R"(
      class C
        var n: Int
        op f()
          signal c
        end
      end
      main
        print 0
      end
    )"));
    EXPECT_FALSE(sys.errors().empty());
  }
  {
    EmeraldSystem sys;
    sys.AddNode(SparcStationSlc());
    EXPECT_FALSE(sys.Load(R"(
      monitor class M
        var n: Int
        cond a
        op f()
          wait b
        end
      end
      main
        print 0
      end
    )"));
    ASSERT_FALSE(sys.errors().empty());
    EXPECT_NE(sys.errors()[0].find("unknown condition"), std::string::npos);
  }
}

}  // namespace
}  // namespace hetm
