// Simulated world: clocks, network timing, system-variant constraints.
#include "src/sim/world.h"

#include <gtest/gtest.h>

#include "src/arch/calibration.h"
#include "src/emerald/system.h"

namespace hetm {
namespace {

TEST(World, ClockDerivedFromMeter) {
  World world;
  int n = world.AddNode(SparcStationSlc());
  Node& node = world.node(n);
  EXPECT_EQ(node.now_us(), 0.0);
  node.ChargeCycles(20000);  // 20 MHz -> 1000 us
  EXPECT_DOUBLE_EQ(node.now_us(), 1000.0);
  // Delivery can only push forward, never back.
  node.AdvanceTo(500.0);
  EXPECT_DOUBLE_EQ(node.now_us(), 1000.0);
  node.AdvanceTo(2500.0);
  EXPECT_DOUBLE_EQ(node.now_us(), 2500.0);
  node.ChargeCycles(20000);
  EXPECT_DOUBLE_EQ(node.now_us(), 3500.0);
}

TEST(World, MessageDeliveryIncludesLatencyAndSerialization) {
  World world;
  world.AddNode(SparcStationSlc());
  world.AddNode(SparcStationSlc());
  Message msg;
  msg.type = MsgType::kLocationUpdate;
  msg.payload.assign(968, 0);  // 968 + 32 header = 1000 bytes = 8000 bits
  world.Send(0, 1, msg);
  // Run drains the queue; node 1's clock must be at least latency + wire time.
  world.Run();
  double expected = kMessageLatencyUs + 8000.0 / kEthernetMbps;
  EXPECT_GE(world.node(1).now_us(), expected);
}

TEST(World, MachineSpeedScalesSimulatedTime) {
  World world;
  int fast = world.AddNode(Hp9000_433s());
  int slow = world.AddNode(Sun3_100());
  world.node(fast).ChargeCycles(1000000);
  world.node(slow).ChargeCycles(1000000);
  EXPECT_LT(world.node(fast).now_us(), world.node(slow).now_us());
}

TEST(WorldDeath, RawModeRejectsHeterogeneousNodes) {
  World world(ConversionStrategy::kRaw);
  world.AddNode(SparcStationSlc());
  EXPECT_DEATH(world.AddNode(VaxStation4000()), "homogeneous");
}

TEST(WorldDeath, RawModeRejectsMixedOptLevels) {
  World world(ConversionStrategy::kRaw);
  world.AddNode(SparcStationSlc(), OptLevel::kO0);
  EXPECT_DEATH(world.AddNode(SparcStationSlc(), OptLevel::kO1), "homogeneous");
}

TEST(World, OutputAccumulatesAcrossNodes) {
  EmeraldSystem sys;
  sys.AddNode(SparcStationSlc());
  sys.AddNode(VaxStation4000());
  ASSERT_TRUE(sys.Load(R"(
    class Echo
      var junk: Int
      op say(): Int
        print "from the vax"
        return 1
      end
    end
    main
      var e: Ref := new Echo
      move e to nodeat(1)
      print "from the sparc"
      e.say()
    end
  )"));
  ASSERT_TRUE(sys.Run()) << sys.error();
  EXPECT_EQ(sys.output(), "from the sparc\nfrom the vax\n");
}

TEST(World, ElapsedTimeIsMaxOverNodes) {
  EmeraldSystem sys;
  sys.AddNode(SparcStationSlc());
  sys.AddNode(Sun3_100());
  ASSERT_TRUE(sys.Load("main\nprint 1\nend"));
  ASSERT_TRUE(sys.Run());
  EXPECT_GE(sys.ElapsedMs() * 1000.0, sys.node(0).now_us() - 1e-9);
}

TEST(World, SimulatedClockVisibleToGuest) {
  EmeraldSystem sys;
  sys.AddNode(SparcStationSlc());
  sys.AddNode(Sun3_100());
  ASSERT_TRUE(sys.Load(R"(
    class Remote
      var junk: Int
      op nop(): Int
        return 0
      end
    end
    main
      var r: Ref := new Remote
      move r to nodeat(1)
      var t0: Int := clockms()
      var i: Int := 0
      while i < 5 do
        r.nop()
        i := i + 1
      end
      var t1: Int := clockms()
      print t1 - t0 > 0
    end
  )"));
  ASSERT_TRUE(sys.Run()) << sys.error();
  EXPECT_EQ(sys.output(), "true\n");
}

}  // namespace
}  // namespace hetm
