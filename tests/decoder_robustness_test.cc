// Fuzz-style robustness tests for the wire decoders: truncated and bit-flipped
// payloads must produce a sticky WireReader failure (unit level) or a clean
// World::SetError (end to end, via the fault plan's checksum-evading corruption
// mode) — never a crash, abort, or sanitizer finding.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "src/arch/cost_meter.h"
#include "src/arch/machine.h"
#include "src/emerald/system.h"
#include "src/mobility/wire.h"
#include "src/net/transport.h"

namespace hetm {
namespace {

std::vector<uint8_t> BuildSamplePayload(CostMeter* meter) {
  WireWriter w(ConversionStrategy::kNaive, Arch::kSparc32, meter);
  w.U8(3);
  w.U16(0xBEEF);
  w.U32(123456789);
  w.I32(-42);
  w.F64(2.718281828);
  w.Str("heterogeneous");
  w.Oid32(77);
  w.TaggedValue(Value::Int(9));
  w.TaggedValue(Value::Real(-0.5));
  w.TaggedValue(Value::Bool(true));
  w.TaggedValue(Value::Ref(31));
  w.FinishMessage();
  return w.Take();
}

// Reads back the full sample sequence; returns reader.ok() afterwards. Any crash
// or UB here (not a test failure) is what this file exists to rule out.
bool ReadSampleSequence(const std::vector<uint8_t>& bytes, CostMeter* meter) {
  WireReader r(ConversionStrategy::kNaive, Arch::kSparc32, meter, bytes);
  (void)r.U8();
  (void)r.U16();
  (void)r.U32();
  (void)r.I32();
  (void)r.F64();
  (void)r.Str();
  (void)r.Oid32();
  (void)r.TaggedValue();
  (void)r.TaggedValue();
  (void)r.TaggedValue();
  (void)r.TaggedValue();
  r.FinishMessage();
  return r.ok();
}

TEST(DecoderRobustness, TruncationAtEveryLengthFailsCleanly) {
  CostMeter meter(SparcStationSlc());
  std::vector<uint8_t> full = BuildSamplePayload(&meter);
  ASSERT_GT(full.size(), 16u);
  EXPECT_TRUE(ReadSampleSequence(full, &meter));
  for (size_t len = 0; len < full.size(); ++len) {
    std::vector<uint8_t> cut(full.begin(), full.begin() + len);
    // The sequence demands exactly full.size() bytes, so every proper prefix must
    // trip the sticky failure flag somewhere — and must never read out of bounds.
    EXPECT_FALSE(ReadSampleSequence(cut, &meter)) << "prefix length " << len;
  }
}

TEST(DecoderRobustness, SingleBitFlipsNeverCrashTheReader) {
  CostMeter meter(SparcStationSlc());
  std::vector<uint8_t> full = BuildSamplePayload(&meter);
  for (size_t byte = 0; byte < full.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::vector<uint8_t> mutated = full;
      mutated[byte] ^= static_cast<uint8_t>(1u << bit);
      // A flip may survive (it hit a value payload) or fail (it hit a length or a
      // kind byte); either way the reader must return normally.
      (void)ReadSampleSequence(mutated, &meter);
    }
  }
}

TEST(DecoderRobustness, InvalidTaggedKindByteSetsFailure) {
  CostMeter meter(SparcStationSlc());
  WireWriter w(ConversionStrategy::kNaive, Arch::kSparc32, &meter);
  w.U8(0xEE);  // no ValueKind has this encoding
  w.U32(123);
  std::vector<uint8_t> bytes = w.Take();
  WireReader r(ConversionStrategy::kNaive, Arch::kSparc32, &meter, bytes);
  (void)r.TaggedValue();
  EXPECT_FALSE(r.ok());
}

TEST(DecoderRobustness, GarbageStringLengthSetsFailure) {
  CostMeter meter(SparcStationSlc());
  WireWriter w(ConversionStrategy::kNaive, Arch::kSparc32, &meter);
  w.U32(0x7FFFFFFF);  // string length far beyond the buffer
  std::vector<uint8_t> bytes = w.Take();
  WireReader r(ConversionStrategy::kNaive, Arch::kSparc32, &meter, bytes);
  std::string s = r.Str();
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(s.empty());
}

// End-to-end fuzzing: corrupt_evades_checksum re-computes the transport checksum
// over the damaged payload, so bit flips reach the message decoders (ar_codec,
// object_codec, invoke/reply unmarshalling). Across many seeds the run must either
// complete or stop with a clean World::SetError — never crash. Corruption at this
// rate hits most runs, so this sweeps a wide range of damaged-payload shapes.
TEST(DecoderRobustness, EndToEndBitFlipFuzzNeverCrashes) {
  const char* source = R"(
    class Hopper
      var acc: Int
      op work(rounds: Int): Int
        var i: Int := 0
        while i < rounds do
          move self to nodeat((i + 1) % 3)
          acc := acc + i
          i := i + 1
        end
        return acc
      end
    end
    class Sink
      var hits: Int
      op take(v: Int, tag: String): Int
        hits := hits + v + len(tag)
        return hits
      end
    end
    main
      var h: Ref := new Hopper
      var s: Ref := new Sink
      move s to nodeat(2)
      var a: Int := h.work(9)
      var b: Int := s.take(a, "fuzz")
      print b
    end
)";
  int clean_errors = 0;
  int completions = 0;
  for (uint64_t seed = 1; seed <= 30; ++seed) {
    EmeraldSystem sys;
    sys.AddNode(SparcStationSlc());
    sys.AddNode(Sun3_100());
    sys.AddNode(VaxStation4000());
    ASSERT_TRUE(sys.Load(source));
    NetConfig cfg;
    cfg.fault.seed = seed;
    cfg.fault.corrupt_rate = 0.25;
    cfg.fault.corrupt_evades_checksum = true;
    cfg.trace = false;
    sys.world().EnableNet(cfg);
    if (sys.Run()) {
      ++completions;
    } else {
      // Malformed payloads must surface as a recorded runtime error, not a crash.
      EXPECT_FALSE(sys.error().empty()) << "seed " << seed;
      ++clean_errors;
    }
  }
  EXPECT_EQ(clean_errors + completions, 30);
  // At 25% corruption with checksum evasion, at least some runs must have hit a
  // decoder (otherwise the fuzz mode is not wired up).
  EXPECT_GT(clean_errors, 0) << "no seed ever reached a decoder error path";
}

}  // namespace
}  // namespace hetm
