// End-to-end tests of the fault-injecting network layer: migrations must survive
// loss/duplication/reordering bit-for-bit (same output as a fault-free run, same
// trace on the same seed), and the at-most-once move handshake must leave exactly
// one live copy of every object even when the destination crash-stops mid-move.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <string>

#include "src/emerald/system.h"
#include "src/net/transport.h"
#include "src/sched/sched.h"

namespace hetm {
namespace {

// A thread that tours the 3-node world: every iteration moves to a different node
// (target (i+1)%3 never equals the current node (i)%3... the previous target), so
// all `rounds` moves are genuine cross-node migrations, each one a full
// prepare/transfer/commit handshake. The rolling checksum makes any lost, doubled
// or misordered state visible in the printed result.
std::string TourSource(int rounds) {
  return R"(
    class Tourist
      var pad: Int
      op tour(rounds: Int): Int
        var check: Int := 1
        var i: Int := 0
        while i < rounds do
          move self to nodeat((i + 1) % 3)
          check := (check * 31 + i) % 1000003
          i := i + 1
        end
        return check
      end
    end
    main
      var t: Ref := new Tourist
      print t.tour()" +
         std::to_string(rounds) + R"()
      print locate(t) == nodeat()" +
         std::to_string(rounds % 3) + R"()
    end
)";
}

void AddTourNodes(EmeraldSystem& sys) {
  sys.AddNode(SparcStationSlc());
  sys.AddNode(Sun3_100());
  sys.AddNode(VaxStation4000());
}

NetConfig LossyConfig(uint64_t seed) {
  NetConfig cfg;
  cfg.fault.seed = seed;
  cfg.fault.drop_rate = 0.10;
  cfg.fault.duplicate_rate = 0.05;
  cfg.fault.reorder_rate = 0.25;
  cfg.fault.max_extra_delay_us = 5000.0;
  return cfg;
}

struct NetTotals {
  uint64_t committed = 0;
  uint64_t aborted = 0;
  uint64_t retransmits = 0;
  uint64_t dups = 0;
};

NetTotals Totals(EmeraldSystem& sys, int nodes) {
  NetTotals t;
  for (int i = 0; i < nodes; ++i) {
    const CostCounters& c = sys.node(i).meter().counters();
    t.committed += c.moves_committed;
    t.aborted += c.moves_aborted;
    t.retransmits += c.retransmits;
    t.dups += c.dups_suppressed;
  }
  return t;
}

// Every user object must be resident on exactly one live node — the at-most-once
// property, checked directly against the heaps rather than via program output.
void ExpectExactlyOneCopyEach(EmeraldSystem& sys, int nodes) {
  std::map<Oid, int> copies;
  for (int i = 0; i < nodes; ++i) {
    for (Oid oid : sys.node(i).ResidentUserObjects()) {
      copies[oid] += 1;
    }
  }
  EXPECT_FALSE(copies.empty());
  for (const auto& [oid, count] : copies) {
    EXPECT_EQ(count, 1) << "object " << oid << " has " << count << " live copies";
  }
}

TEST(NetFault, HundredMigrationsSurviveLossDupReorder) {
  const std::string source = TourSource(108);

  // Fault-free reference run (no network layer at all).
  EmeraldSystem ref;
  AddTourNodes(ref);
  ASSERT_TRUE(ref.Load(source));
  ASSERT_TRUE(ref.Run()) << ref.error();

  EmeraldSystem sys;
  AddTourNodes(sys);
  ASSERT_TRUE(sys.Load(source));
  sys.world().EnableNet(LossyConfig(20260806));
  ASSERT_TRUE(sys.Run()) << sys.error();

  // The lossy network must be invisible to the program.
  EXPECT_EQ(sys.output(), ref.output());

  NetTotals t = Totals(sys, 3);
  EXPECT_GE(t.committed, 100u);
  EXPECT_EQ(t.aborted, 0u);  // random faults are transient: no handshake gives up
  EXPECT_GT(t.retransmits, 0u) << "fault plan never bit; test is vacuous";
  EXPECT_GT(t.dups, 0u);
  ExpectExactlyOneCopyEach(sys, 3);
}

TEST(NetFault, SameSeedReplaysIdenticalTrace) {
  const std::string source = TourSource(108);
  uint64_t digests[2];
  uint64_t emitted[2];
  std::string outputs[2];
  for (int run = 0; run < 2; ++run) {
    EmeraldSystem sys;
    AddTourNodes(sys);
    ASSERT_TRUE(sys.Load(source));
    sys.world().EnableNet(LossyConfig(20260806));
    ASSERT_TRUE(sys.Run()) << sys.error();
    digests[run] = sys.world().tracer().digest();
    emitted[run] = sys.world().tracer().emitted();
    outputs[run] = sys.output();
  }
  EXPECT_GT(emitted[0], 0u);
  EXPECT_EQ(emitted[0], emitted[1]);
  EXPECT_EQ(digests[0], digests[1]);
  EXPECT_EQ(outputs[0], outputs[1]);

  // A different seed must produce a different fault schedule (otherwise the seed
  // plumbing is dead and the replay assertion above proves nothing).
  EmeraldSystem other;
  AddTourNodes(other);
  ASSERT_TRUE(other.Load(source));
  other.world().EnableNet(LossyConfig(977));
  ASSERT_TRUE(other.Run()) << other.error();
  EXPECT_NE(other.world().tracer().digest(), digests[0]);
}

// The replay guarantee must survive the placement scheduler: with heat metering,
// digest gossip (explicit and heartbeat-piggybacked) and the migration policy all
// enabled on a lossy network, the same seed still replays a bit-identical event
// stream and simulated clock — the scheduler consumes no randomness and its
// decisions are part of the deterministic schedule.
TEST(NetFault, SameSeedReplaysIdenticalTraceWithSchedulerEnabled) {
  const std::string source = TourSource(24);
  uint64_t digests[2];
  std::string outputs[2];
  double elapsed[2];
  for (int run = 0; run < 2; ++run) {
    EmeraldSystem sys;
    AddTourNodes(sys);
    ASSERT_TRUE(sys.Load(source));
    sys.world().EnableNet(LossyConfig(20260806));
    sys.world().EnableSched(SchedConfig{});
    ASSERT_TRUE(sys.Run()) << sys.error();
    digests[run] = sys.world().tracer().digest();
    outputs[run] = sys.output();
    elapsed[run] = sys.ElapsedMs();
  }
  EXPECT_EQ(digests[0], digests[1]);
  EXPECT_EQ(outputs[0], outputs[1]);
  EXPECT_DOUBLE_EQ(elapsed[0], elapsed[1]);
}

// The destination crash-stops at the instant the kMoveObject transfer frame would
// arrive — the frame dies with the node. The source's retransmit chain parks the
// channel, the heartbeat probes go unanswered until the dead node's lease expires,
// and the move handshake aborts with the transfer provably undelivered: the thread
// resumes from the limbo copy at the source, which remains the single owner.
TEST(NetFault, DestCrashMidMoveLeavesThreadAtSource) {
  const char* source = R"(
    class Roamer
      var state: Int
      op go(): Int
        state := 7
        move self to nodeat(1)
        state := state + 1
        return state
      end
    end
    main
      var r: Ref := new Roamer
      print r.go()
      print locate(r) == nodeat(0)
    end
)";
  EmeraldSystem sys;
  sys.AddNode(SparcStationSlc());
  sys.AddNode(VaxStation4000());
  NetConfig cfg;
  cfg.fault.crash_triggers.push_back(
      CrashTrigger{/*node=*/1, /*on_type=*/MsgType::kMoveObject, /*nth=*/1,
                   /*restart_after_us=*/-1.0});
  ASSERT_TRUE(sys.Load(source));
  sys.world().EnableNet(cfg);
  ASSERT_TRUE(sys.Run()) << sys.error();

  // The move silently failed: the thread ran on at the source and the object never
  // left node 0.
  EXPECT_EQ(sys.output(), "8\ntrue\n");
  EXPECT_EQ(sys.node(0).meter().counters().moves_aborted, 1u);
  EXPECT_EQ(sys.node(0).meter().counters().moves_committed, 0u);
  // Only the lease verdict may declare the peer dead, and the abort must name the
  // provable cause: the transfer frames never got through.
  EXPECT_GE(sys.node(0).meter().counters().leases_expired, 1u);
  EXPECT_NE(sys.node(0).last_abort_reason().find("transfer"), std::string::npos)
      << sys.node(0).last_abort_reason();
  ExpectExactlyOneCopyEach(sys, 2);
  EXPECT_TRUE(sys.node(1).ResidentUserObjects().empty());
}

// Same crash window, but the destination restarts after kMidMoveRestartAfterUs —
// inside the source's lease on it, so the failure detector never rules. The
// retransmitted transfer reaches the new incarnation, which has no reservation for
// the move and drops it; the source's kMoveQuery gets a kUnknown verdict and the
// move aborts cleanly. Exercises the epoch/stream resynchronisation path end to
// end.
TEST(NetFault, DestCrashAndRestartMidMoveAbortsCleanly) {
  const char* source = R"(
    class Roamer
      var state: Int
      op go(): Int
        state := 7
        move self to nodeat(1)
        state := state + 1
        return state
      end
    end
    main
      var r: Ref := new Roamer
      print r.go()
      print locate(r) == nodeat(0)
    end
)";
  EmeraldSystem sys;
  sys.AddNode(SparcStationSlc());
  sys.AddNode(VaxStation4000());
  NetConfig cfg;
  cfg.fault.crash_triggers.push_back(
      CrashTrigger{/*node=*/1, /*on_type=*/MsgType::kMoveObject, /*nth=*/1,
                   /*restart_after_us=*/kMidMoveRestartAfterUs});
  ASSERT_TRUE(sys.Load(source));
  sys.world().EnableNet(cfg);
  ASSERT_TRUE(sys.Run()) << sys.error();

  EXPECT_EQ(sys.output(), "8\ntrue\n");
  EXPECT_EQ(sys.node(0).meter().counters().moves_aborted, 1u);
  // The abort must come from the verdict query, not a racing lease expiry: the
  // destination was back before the lease could run out.
  EXPECT_EQ(sys.node(0).meter().counters().leases_expired, 0u);
  EXPECT_NE(sys.node(0).last_abort_reason().find("lost move state"),
            std::string::npos)
      << sys.node(0).last_abort_reason();
  // The restarted incarnation must never have installed the object.
  EXPECT_EQ(sys.node(1).meter().counters().moves_committed, 0u);
  ExpectExactlyOneCopyEach(sys, 2);
  EXPECT_TRUE(sys.node(1).ResidentUserObjects().empty());
}

// A restarted node has lost all its location hints, including for objects it was
// the birth node of. Messages routed to it by birth-node fallback must trigger a
// locate broadcast that rebuilds the hint from the live hosts, after which routing
// works again.
TEST(NetFault, RestartedNodeRebuildsHintsViaLocate) {
  const char* source = R"(
    class Holder
      var slot: Int
      op put(v: Int): Int
        slot := v
        return slot
      end
      op get(): Int
        return slot
      end
    end
    class Factory
      op makeFar(): Ref
        var h: Ref := new Holder
        var ignore: Int := h.put(41)
        move h to nodeat(2)
        return h
      end
    end
    main
      var f: Ref := new Factory
      move f to nodeat(1)
      var h: Ref := f.makeFar()
      var t: Int := 0
      while t < 700 do
        t := clockms()
      end
      print h.get() + 1
    end
)";
  EmeraldSystem sys;
  sys.AddNode(SparcStationSlc());
  sys.AddNode(Sun3_100());
  sys.AddNode(VaxStation4000());
  NetConfig cfg;
  // Node 1 is the Holder's birth node. Crash it after the Holder has settled on
  // node 2 and the main thread is spinning on its clock, restart it shortly after;
  // main's h.get() then routes to the freshly restarted birth node, which knows
  // nothing and must locate.
  cfg.fault.crashes.push_back(CrashEvent{/*node=*/1, /*at_us=*/400000.0,
                                         /*restart_at_us=*/450000.0});
  ASSERT_TRUE(sys.Load(source));
  sys.world().EnableNet(cfg);
  ASSERT_TRUE(sys.Run()) << sys.error();

  EXPECT_EQ(sys.output(), "42\n");
  EXPECT_GE(sys.node(1).meter().counters().locate_queries, 1u);
}

// When the only copy of an object dies with a crashed node, senders must not hang:
// the retransmit chain fails, hints are discarded, the locate broadcast exhausts
// its rounds, and the world stops with a clean "object lost" error.
TEST(NetFault, ObjectLostWithCrashedNodeReportsCleanError) {
  const char* source = R"(
    class Worker
      var n: Int
      op poke(): Int
        n := n + 1
        return n
      end
    end
    main
      var w: Ref := new Worker
      move w to nodeat(1)
      print w.poke()
      var t: Int := 0
      while t < 700 do
        t := clockms()
      end
      print w.poke()
    end
)";
  EmeraldSystem sys;
  sys.AddNode(SparcStationSlc());
  sys.AddNode(Sun3_100());
  sys.AddNode(VaxStation4000());
  NetConfig cfg;
  cfg.fault.crashes.push_back(CrashEvent{/*node=*/1, /*at_us=*/400000.0,
                                         /*restart_at_us=*/-1.0});
  ASSERT_TRUE(sys.Load(source));
  sys.world().EnableNet(cfg);
  EXPECT_FALSE(sys.Run());
  EXPECT_NE(sys.error().find("lost"), std::string::npos) << sys.error();
  // The first poke (pre-crash) must have completed; the error is then appended to
  // the output stream by World::SetError.
  EXPECT_EQ(sys.output().rfind("1\n", 0), 0u);
  EXPECT_NE(sys.output().find("RUNTIME ERROR"), std::string::npos);
}

}  // namespace
}  // namespace hetm
