// The observability subsystem's end-to-end contracts (DESIGN.md section 10):
//
//  * Span stitching: every move's source- and destination-side spans share one
//    trace id and reconstruct into exactly ONE causal tree rooted at the source's
//    kMove span, even under 10% frame loss — with the retransmissions that
//    repaired the loss attached inside the kTransfer span they delayed.
//  * Determinism: tracing is passive. Disabling it changes neither the program
//    output nor the simulated clock, and the same seed replays a byte-identical
//    event stream (equal FNV digests).
//  * Export: the Chrome trace-event JSON carries one async track per trace id
//    spanning both nodes' pids, covering the full phase vocabulary.
//  * Dead-letter queue: a kReply undeliverable at lease expiry parks (kReplyParked)
//    and is flushed to the same incarnation on reconnect (kReplyFlushed),
//    resuming the blocked caller.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <set>
#include <string>
#include <vector>

#include "src/emerald/system.h"
#include "src/net/transport.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace hetm {
namespace {

std::string TourSource(int rounds) {
  return R"(
    class Tourist
      var pad: Int
      op tour(rounds: Int): Int
        var check: Int := 1
        var i: Int := 0
        while i < rounds do
          move self to nodeat((i + 1) % 3)
          check := (check * 31 + i) % 1000003
          i := i + 1
        end
        return check
      end
    end
    main
      var t: Ref := new Tourist
      print t.tour()" +
         std::to_string(rounds) + R"()
    end
)";
}

void AddTourNodes(EmeraldSystem& sys) {
  sys.AddNode(SparcStationSlc());
  sys.AddNode(Sun3_100());
  sys.AddNode(VaxStation4000());
}

// Depth-first over a span tree, visiting every node.
void Visit(const SpanTree& tree, const std::function<void(const SpanTree&)>& fn) {
  fn(tree);
  for (const SpanTree& child : tree.children) {
    Visit(child, fn);
  }
}

uint64_t CountInstantsUnder(const SpanTree& tree, TracePoint span, TracePoint instant) {
  uint64_t n = 0;
  Visit(tree, [&](const SpanTree& s) {
    if (s.begin.point != span) {
      return;
    }
    for (const TraceEvent& ev : s.instants) {
      n += (ev.point == instant) ? 1 : 0;
    }
  });
  return n;
}

// Under 10% drop every move still reconstructs as exactly one tree per trace id,
// rooted at the source's kMove span, and the retransmissions that repaired lost
// transfer frames sit inside the kTransfer span they stalled.
TEST(ObsTrace, LossyMigrationStitchesOneTreePerMoveWithRetxInsideTransfer) {
  EmeraldSystem sys;
  AddTourNodes(sys);
  ASSERT_TRUE(sys.Load(TourSource(60)));
  NetConfig cfg;
  cfg.fault.seed = 20260806;
  cfg.fault.drop_rate = 0.10;
  sys.world().EnableNet(cfg);
  ASSERT_TRUE(sys.Run()) << sys.error();

  std::vector<TraceEvent> events = sys.world().tracer().Snapshot();
  std::set<uint64_t> move_ids;
  for (const TraceEvent& ev : events) {
    if (ev.point == TracePoint::kMove && ev.kind == TraceKind::kBegin) {
      move_ids.insert(ev.trace_id);
    }
  }
  ASSERT_GE(move_ids.size(), 60u);

  uint64_t transfer_retx = 0;
  for (uint64_t id : move_ids) {
    std::vector<SpanTree> trees = Tracer::BuildTraceTrees(events, id);
    ASSERT_EQ(trees.size(), 1u) << "trace " << std::hex << id
                                << " split into " << std::dec << trees.size()
                                << " trees";
    EXPECT_EQ(trees[0].begin.point, TracePoint::kMove);
    // Both sides of the wire contributed to the one tree.
    std::set<int> nodes;
    Visit(trees[0], [&](const SpanTree& s) { nodes.insert(s.begin.node); });
    EXPECT_GE(nodes.size(), 2u) << "trace " << std::hex << id;
    transfer_retx += CountInstantsUnder(trees[0], TracePoint::kTransfer,
                                        TracePoint::kFrameRetx);
  }
  // 10% drop over 60 transfers: some transfer frame (or its ack) was lost, so at
  // least one retransmit must have landed inside a transfer span — otherwise the
  // parenting assertion above is vacuous.
  EXPECT_GT(transfer_retx, 0u);
  EXPECT_GT(sys.world().tracer().count(TracePoint::kFrameRetx), 0u);
}

// Tracing is passive: turning it off changes neither the output nor the simulated
// clock, and the same seed emits the identical event stream.
TEST(ObsTrace, TracingOnOrOffSameScheduleSameSeedSameDigest) {
  const std::string source = TourSource(12);
  struct RunResult {
    std::string output;
    double elapsed_ms = 0.0;
    uint64_t digest = 0;
    uint64_t emitted = 0;
  };
  auto run = [&](bool tracing) {
    EmeraldSystem sys;
    AddTourNodes(sys);
    EXPECT_TRUE(sys.Load(source));
    NetConfig cfg;
    cfg.fault.seed = 4242;
    cfg.fault.drop_rate = 0.10;
    cfg.trace = true;  // frame-level instants too: the hardest determinism case
    sys.world().EnableNet(cfg);
    sys.world().tracer().set_enabled(tracing);
    EXPECT_TRUE(sys.Run()) << sys.error();
    return RunResult{sys.output(), sys.ElapsedMs(), sys.world().tracer().digest(),
                     sys.world().tracer().emitted()};
  };

  RunResult on1 = run(true);
  RunResult on2 = run(true);
  RunResult off = run(false);

  EXPECT_GT(on1.emitted, 0u);
  EXPECT_EQ(on1.emitted, on2.emitted);
  EXPECT_EQ(on1.digest, on2.digest);
  EXPECT_EQ(on1.output, on2.output);

  // Disabled: nothing emitted, schedule untouched.
  EXPECT_EQ(off.emitted, 0u);
  EXPECT_EQ(off.output, on1.output);
  EXPECT_DOUBLE_EQ(off.elapsed_ms, on1.elapsed_ms);
}

// One clean migration: its trace id appears on both nodes' pids in the Chrome
// export, with the full lifecycle phase vocabulary, and ending the spans fed the
// phase histograms the bench tables print.
TEST(ObsTrace, ChromeExportStitchesOneMoveAcrossBothNodes) {
  const char* source = R"(
    class Roamer
      var state: Int
      op go(): Int
        state := 7
        move self to nodeat(1)
        return state + 1
      end
    end
    main
      var r: Ref := new Roamer
      print r.go()
    end
)";
  EmeraldSystem sys;
  sys.AddNode(SparcStationSlc());
  sys.AddNode(VaxStation4000());
  ASSERT_TRUE(sys.Load(source));
  sys.world().EnableNet(NetConfig{});
  ASSERT_TRUE(sys.Run()) << sys.error();
  EXPECT_EQ(sys.output(), "8\n");

  std::vector<TraceEvent> events = sys.world().tracer().Snapshot();
  uint64_t id = 0;
  for (const TraceEvent& ev : events) {
    if (ev.point == TracePoint::kMove && ev.kind == TraceKind::kBegin) {
      id = ev.trace_id;
      break;
    }
  }
  ASSERT_NE(id, 0u);

  std::set<int> nodes;
  std::set<TracePoint> phases;
  for (const TraceEvent& ev : events) {
    if (ev.trace_id != id) {
      continue;
    }
    nodes.insert(ev.node);
    if (ev.kind == TraceKind::kBegin) {
      phases.insert(ev.point);
    }
  }
  EXPECT_GE(nodes.size(), 2u) << "trace never crossed the wire";
  // move, pack, negotiate, transfer (source); reserve, unpack, resume (dest).
  EXPECT_GE(phases.size(), 6u);
  for (TracePoint p : {TracePoint::kMove, TracePoint::kPack, TracePoint::kTransfer,
                       TracePoint::kReserve, TracePoint::kUnpack, TracePoint::kResume}) {
    EXPECT_EQ(phases.count(p), 1u) << "missing phase " << TracePointName(p);
  }

  // The async-nestable export keys all of it by the trace id.
  char idhex[32];
  std::snprintf(idhex, sizeof(idhex), "\"id\":\"%llx\"",
                static_cast<unsigned long long>(id));
  std::string json = sys.world().tracer().ToChromeJson();
  EXPECT_NE(json.find(idhex), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"transfer\""), std::string::npos);

  // Ending the spans recorded phase latencies into the registry.
  sys.world().ExportMetrics();
  const LogHistogram* h = sys.world().metrics().FindHistogram("phase.transfer_us");
  ASSERT_NE(h, nullptr);
  EXPECT_GE(h->count(), 1u);
}

// A reply trapped behind a one-way cut until the replier's lease on the waiter
// expires must not be lost: it parks in the dead-letter queue and flushes to the
// same incarnation when the cut heals, resuming the blocked caller.
TEST(ObsTrace, ReplyParkedAtLeaseExpiryFlushesOnReconnect) {
  const char* source = R"(
    class Keeper
      var held: Int
      op set(v: Int): Int
        held := v
        return held
      end
    end
    main
      var k: Ref := new Keeper
      move k to nodeat(1)
      var t: Int := 0
      while t < 100 do
        t := clockms()
      end
      print k.set(4)
      print 9
    end
)";
  EmeraldSystem sys;
  sys.AddNode(SparcStationSlc());
  sys.AddNode(VaxStation4000());
  NetConfig cfg;
  // One-way cut killing frames LEAVING node 1, opening at the delivery of the ack
  // that covers the kInvoke (3rd data frame node 0 sent: prepare, transfer,
  // invoke). Node 0's channel is clean — it just waits for the reply — while node
  // 1's reply, retransmits and probe echoes all die at the cut. Node 1 stops
  // hearing node 0 entirely, so its lease on the waiter expires with the reply
  // undelivered: the reply parks. The heal lands inside dlq_hold_us, the probes
  // get through, and the flush resumes the caller.
  PartitionWindow w;
  w.side_a = {1};
  w.symmetric = false;
  w.start_trigger_node = 0;
  w.start_on_ack = true;
  w.start_nth = 3;
  w.heal_after_us = 250000.0;  // > lease_us (reply must park), < dlq_hold_us
  cfg.fault.partitions.push_back(w);
  ASSERT_TRUE(sys.Load(source));
  sys.world().EnableNet(cfg);
  ASSERT_TRUE(sys.Run()) << sys.error();

  EXPECT_EQ(sys.output(), "4\n9\n");
  EXPECT_EQ(sys.node(1).meter().counters().replies_parked, 1u);
  EXPECT_EQ(sys.node(1).meter().counters().replies_flushed, 1u);
  EXPECT_EQ(sys.node(1).meter().counters().replies_dropped, 0u);
  EXPECT_GE(sys.node(1).meter().counters().leases_expired, 1u);
  const Tracer& tracer = sys.world().tracer();
  EXPECT_EQ(tracer.count(TracePoint::kReplyParked), 1u);
  EXPECT_EQ(tracer.count(TracePoint::kReplyFlushed), 1u);
  EXPECT_EQ(tracer.count(TracePoint::kReplyDropped), 0u);
  EXPECT_GT(tracer.count(TracePoint::kPartitionDrop), 0u);
}

// The dual of the flush test: the same one-way cut parks the reply, but this
// time the WAITER crash-stops and restarts while partitioned. When the cut heals
// the replier hears a NEW incarnation of its peer — the continuation the parked
// reply was addressed to is gone, so delivering it would hand a stale answer to
// a reborn node. The dead-letter queue must drop it, counted, never delivered.
TEST(ObsTrace, ParkedReplyToRestartedIncarnationIsDroppedNotDelivered) {
  const char* source = R"(
    class Keeper
      var held: Int
      op set(v: Int): Int
        held := v
        return held
      end
    end
    main
      var k: Ref := new Keeper
      move k to nodeat(1)
      var t: Int := 0
      while t < 100 do
        t := clockms()
      end
      print k.set(4)
      print 9
    end
)";
  EmeraldSystem sys;
  sys.AddNode(SparcStationSlc());
  sys.AddNode(VaxStation4000());
  NetConfig cfg;
  // Same cut as the flush test: frames leaving node 1 die once node 0's kInvoke
  // is acked, so node 1's reply parks when its lease on node 0 expires (~cut +
  // 120 ms). Node 0 — blocked waiting on that reply — crash-stops at 150 ms and
  // restarts at 200 ms: a fresh incarnation with no continuation. The heal lands
  // inside dlq_hold_us; node 1's probes then draw echoes carrying the NEW epoch,
  // and the flush path must drop the parked reply instead of delivering it.
  PartitionWindow w;
  w.side_a = {1};
  w.symmetric = false;
  w.start_trigger_node = 0;
  w.start_on_ack = true;
  w.start_nth = 3;
  w.heal_after_us = 250000.0;
  cfg.fault.partitions.push_back(w);
  cfg.fault.crashes.push_back(
      CrashEvent{/*node=*/0, /*at_us=*/150000.0, /*restart_at_us=*/200000.0});
  ASSERT_TRUE(sys.Load(source));
  sys.world().EnableNet(cfg);
  ASSERT_TRUE(sys.Run()) << sys.error();

  // The waiter died before the reply could land: the program's tail never ran.
  EXPECT_EQ(sys.output().find("4"), std::string::npos);
  EXPECT_EQ(sys.node(1).meter().counters().replies_parked, 1u);
  EXPECT_EQ(sys.node(1).meter().counters().replies_dropped, 1u);
  EXPECT_EQ(sys.node(1).meter().counters().replies_flushed, 0u);
  const Tracer& tracer = sys.world().tracer();
  EXPECT_EQ(tracer.count(TracePoint::kReplyParked), 1u);
  EXPECT_EQ(tracer.count(TracePoint::kReplyDropped), 1u);
  EXPECT_EQ(tracer.count(TracePoint::kReplyFlushed), 0u);
}

}  // namespace
}  // namespace hetm
