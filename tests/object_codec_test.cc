// Object field images across per-architecture layouts.
#include "src/mobility/object_codec.h"

#include <gtest/gtest.h>

#include "src/compiler/compiler.h"

namespace hetm {
namespace {

const char* kProgram = R"(
  class Bag
    var i: Int
    var r: Real
    var b: Bool
    var s: String
    var peer: Ref
    var n: Node
  end
  main
  end
)";

const CompiledClass& CompileBag(std::shared_ptr<const CompiledProgram>* keep) {
  CompileResult r = CompileSource(kProgram);
  EXPECT_TRUE(r.ok());
  *keep = r.program;
  for (const auto& cls : r.program->classes) {
    if (cls->name == "Bag") {
      return *cls;
    }
  }
  HETM_UNREACHABLE("Bag not found");
}

std::vector<Value> SampleValues() {
  return {Value::Int(-98765), Value::Real(1234.5625), Value::Bool(true),
          Value::Str(0x30000005), Value::Ref(0x40123456), Value::NodeRef(NodeOid(3))};
}

class ObjectCodecPerArch : public ::testing::TestWithParam<Arch> {};

TEST_P(ObjectCodecPerArch, FieldRoundTrips) {
  Arch arch = GetParam();
  std::shared_ptr<const CompiledProgram> keep;
  const CompiledClass& cls = CompileBag(&keep);
  EmObject obj;
  obj.fields = MakeFieldImage(arch, cls);
  std::vector<Value> vals = SampleValues();
  for (size_t f = 0; f < vals.size(); ++f) {
    WriteFieldValue(arch, cls, obj, static_cast<int>(f), vals[f]);
  }
  for (size_t f = 0; f < vals.size(); ++f) {
    Value back = ReadFieldValue(arch, cls, obj, static_cast<int>(f));
    EXPECT_EQ(back.i, vals[f].i);
    EXPECT_EQ(back.r, vals[f].r);
    EXPECT_EQ(back.oid, vals[f].oid);
  }
}

INSTANTIATE_TEST_SUITE_P(AllArchs, ObjectCodecPerArch,
                         ::testing::Values(Arch::kVax32, Arch::kM68k, Arch::kSparc32),
                         [](const ::testing::TestParamInfo<Arch>& info) {
                           return ArchName(info.param);
                         });

TEST(ObjectCodec, RawImagesDifferAcrossArchitectures) {
  std::shared_ptr<const CompiledProgram> keep;
  const CompiledClass& cls = CompileBag(&keep);
  std::vector<std::vector<uint8_t>> images;
  for (Arch arch : {Arch::kVax32, Arch::kM68k, Arch::kSparc32}) {
    EmObject obj;
    obj.fields = MakeFieldImage(arch, cls);
    std::vector<Value> vals = SampleValues();
    for (size_t f = 0; f < vals.size(); ++f) {
      WriteFieldValue(arch, cls, obj, static_cast<int>(f), vals[f]);
    }
    images.push_back(obj.fields);
  }
  EXPECT_NE(images[0], images[1]);
  EXPECT_NE(images[1], images[2]);
  EXPECT_NE(images[0], images[2]);
}

TEST(ObjectCodec, MarshalRelayoutsAcrossArchitectures) {
  std::shared_ptr<const CompiledProgram> keep;
  const CompiledClass& cls = CompileBag(&keep);
  for (Arch src : {Arch::kVax32, Arch::kM68k, Arch::kSparc32}) {
    for (Arch dst : {Arch::kVax32, Arch::kM68k, Arch::kSparc32}) {
      EmObject obj;
      obj.fields = MakeFieldImage(src, cls);
      std::vector<Value> vals = SampleValues();
      for (size_t f = 0; f < vals.size(); ++f) {
        WriteFieldValue(src, cls, obj, static_cast<int>(f), vals[f]);
      }
      CostMeter meter{SparcStationSlc()};
      WireWriter w(ConversionStrategy::kNaive, src, &meter);
      MarshalObjectFields(src, cls, obj, w);
      std::vector<uint8_t> bytes = w.Take();

      EmObject arrived;
      arrived.fields = MakeFieldImage(dst, cls);
      WireReader r(ConversionStrategy::kNaive, src, &meter, bytes);
      UnmarshalObjectFields(dst, cls, arrived, r);
      EXPECT_TRUE(r.AtEnd());
      for (size_t f = 0; f < vals.size(); ++f) {
        Value back = ReadFieldValue(dst, cls, arrived, static_cast<int>(f));
        EXPECT_EQ(back.i, vals[f].i) << ArchName(src) << "->" << ArchName(dst);
        EXPECT_EQ(back.r, vals[f].r) << ArchName(src) << "->" << ArchName(dst);
        EXPECT_EQ(back.oid, vals[f].oid) << ArchName(src) << "->" << ArchName(dst);
      }
    }
  }
}

}  // namespace
}  // namespace hetm
