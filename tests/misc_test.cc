// Coverage for small shared components: Value rendering, ArchInfo invariants,
// CodeRegistry, CompiledProgram lookup, message sizes, IR disassembly.
#include <gtest/gtest.h>

#include "src/compiler/compiler.h"
#include "src/runtime/code_registry.h"
#include "src/runtime/messages.h"
#include "src/runtime/value.h"

namespace hetm {
namespace {

TEST(Value, ToStringRendersEveryKind) {
  EXPECT_EQ(ToString(Value::Int(-42)), "-42");
  EXPECT_EQ(ToString(Value::Real(2.5)), "2.5");
  EXPECT_EQ(ToString(Value::Bool(true)), "true");
  EXPECT_EQ(ToString(Value::Bool(false)), "false");
  EXPECT_EQ(ToString(Value::Str(0x30000001)), "String@30000001");
  EXPECT_EQ(ToString(Value::Ref(0x40000001)), "Ref@40000001");
}

TEST(Value, KindPredicates) {
  EXPECT_TRUE(IsReference(ValueKind::kStr));
  EXPECT_TRUE(IsReference(ValueKind::kRef));
  EXPECT_TRUE(IsReference(ValueKind::kNode));
  EXPECT_FALSE(IsReference(ValueKind::kInt));
  EXPECT_EQ(CellsOf(ValueKind::kReal), 2);
  EXPECT_EQ(CellsOf(ValueKind::kInt), 1);
  EXPECT_STREQ(ValueKindName(ValueKind::kReal), "Real");
}

TEST(ValueDeath, AsBoolRequiresBool) {
  EXPECT_DEATH(Value::Int(1).AsBool(), "HETM_CHECK");
}

TEST(ArchInfo, DescriptorsAreConsistent) {
  for (int a = 0; a < kNumArchs; ++a) {
    const ArchInfo& info = GetArchInfo(static_cast<Arch>(a));
    EXPECT_GT(info.num_regs, 0);
    EXPECT_GT(info.int_home_regs, 0);
    EXPECT_LE(info.int_home_base + info.int_home_regs, info.num_regs);
    if (info.ref_home_regs > 0) {
      EXPECT_LE(info.ref_home_base + info.ref_home_regs, info.num_regs);
      // Pools must not overlap.
      bool disjoint = info.ref_home_base >= info.int_home_base + info.int_home_regs ||
                      info.int_home_base >= info.ref_home_base + info.ref_home_regs;
      EXPECT_TRUE(disjoint);
    }
  }
  EXPECT_TRUE(GetArchInfo(Arch::kVax32).atomic_unlink);
  EXPECT_FALSE(GetArchInfo(Arch::kM68k).atomic_unlink);
  EXPECT_EQ(GetArchInfo(Arch::kVax32).byte_order, ByteOrder::kLittle);
  EXPECT_EQ(GetArchInfo(Arch::kVax32).float_format, FloatFormat::kVaxD);
  EXPECT_EQ(ToString(Arch::kSparc32), "SPARC");
}

TEST(Machines, Table1ModelsAreDistinct) {
  std::vector<MachineModel> machines = AllTable1Machines();
  EXPECT_EQ(machines.size(), 6u);
  for (const MachineModel& m : machines) {
    EXPECT_GT(m.clock_mhz, 0.0);
    EXPECT_GT(m.cpi_scale, 0.0);
    // CyclesToMicros sanity.
    EXPECT_GT(m.CyclesToMicros(1000), 0.0);
  }
  // Work-throughput ordering the paper implies: Sun-3 slowest per cycle budget.
  auto us = [](const MachineModel& m) { return m.CyclesToMicros(1000000); };
  EXPECT_GT(us(Sun3_100()), us(Hp9000_433s()));
  EXPECT_GT(us(Sun3_100()), us(SparcStationSlc()));
  EXPECT_GT(us(VaxStation2000()), us(VaxStation4000()));
}

TEST(CodeRegistry, FindByOidAndProgramBackPointer) {
  CompileResult r = CompileSource(R"(
    class X
      var f: Int
    end
    main
    end
  )");
  ASSERT_TRUE(r.ok());
  CodeRegistry registry;
  registry.Register(r.program);
  Oid x_oid = r.program->classes[0]->code_oid;
  const CodeRegistry::Entry* entry = registry.Find(x_oid);
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->cls->name, "X");
  EXPECT_EQ(entry->program, r.program.get());
  EXPECT_EQ(registry.Find(0xDEAD), nullptr);
  EXPECT_EQ(r.program->FindByOid(x_oid), r.program->classes[0].get());
  EXPECT_EQ(r.program->FindByOid(0xDEAD), nullptr);
}

TEST(Messages, WireSizeIncludesHeader) {
  Message msg;
  msg.payload.assign(100, 0);
  EXPECT_EQ(msg.WireSize(), 132u);
}

TEST(IrDisassemble, ListsCellsStopsAndSites) {
  CompileResult r = CompileSource(R"(
    class Y
      var f: Int
      op go(n: Int): Int
        print n
        return self.go(n - 1)
      end
    end
    main
    end
  )");
  ASSERT_TRUE(r.ok());
  const CompiledClass* y = nullptr;
  for (const auto& cls : r.program->classes) {
    if (cls->name == "Y") {
      y = cls.get();
    }
  }
  std::string text = Disassemble(y->ops[0].ir[0]);
  EXPECT_NE(text.find("op go"), std::string::npos);
  EXPECT_NE(text.find("[stop 1]"), std::string::npos);
  EXPECT_NE(text.find(".go"), std::string::npos);  // call site annotation
  EXPECT_NE(text.find("trap print"), std::string::npos);
}

TEST(OptLevelNames, Stable) {
  EXPECT_STREQ(OptLevelName(OptLevel::kO0), "O0");
  EXPECT_STREQ(OptLevelName(OptLevel::kO1), "O1");
}

}  // namespace
}  // namespace hetm
