// The observability plane's contracts (DESIGN.md section 15):
//
//  * Histograms: bucket-wise merge is associative (collector order cannot
//    matter), the kObsReport wire encoding round-trips exactly, and
//    SnapshotDelta never double-counts an observation across slices.
//  * Slices: the per-slice counter deltas the collector merges sum back to the
//    cluster's cumulative CostCounters — nothing lost, nothing counted twice —
//    and the mailed-report path is deterministic (same seed, same JSON).
//  * Sampling: the head-based verdict in trace-id bit 63 is a pure function of
//    (plane seed, trace id), so same-seed runs sample the identical move set
//    and both ends of the wire agree without re-deciding; a move that ends in
//    an abort is force-sampled out of its shadow buffer even at rate zero; and
//    the whole plane is passive — enabling it changes neither the program
//    output nor the simulated clock.
#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "src/emerald/system.h"
#include "src/net/transport.h"
#include "src/obs/metrics.h"
#include "src/obs/plane.h"
#include "src/obs/trace.h"

namespace hetm {
namespace {

std::string TourSource(int rounds) {
  return R"(
    class Tourist
      var pad: Int
      op tour(rounds: Int): Int
        var check: Int := 1
        var i: Int := 0
        while i < rounds do
          move self to nodeat((i + 1) % 3)
          check := (check * 31 + i) % 1000003
          i := i + 1
        end
        return check
      end
    end
    main
      var t: Ref := new Tourist
      print t.tour()" +
         std::to_string(rounds) + R"()
    end
)";
}

void AddTourNodes(EmeraldSystem& sys) {
  sys.AddNode(SparcStationSlc());
  sys.AddNode(Sun3_100());
  sys.AddNode(VaxStation4000());
}

std::vector<uint8_t> Encode(const LogHistogram& h) {
  std::vector<uint8_t> out;
  h.EncodeTo(&out);
  return out;
}

// Merging is associative and commutative bucket-wise: (a+b)+c == a+(b+c) down
// to the exact wire bytes, so the order reports arrive at the collector can
// never change the merged slice.
TEST(ObsPlaneHistogram, MergeAssociative) {
  LogHistogram a, b, c;
  for (int i = 1; i <= 200; ++i) {
    a.Record(i * 3.7);
    b.Record(i * i * 0.9);
    if (i % 3 == 0) {
      c.Record(1e6 / i);
    }
  }
  LogHistogram ab_c = a;
  ab_c.Merge(b);
  ab_c.Merge(c);
  LogHistogram bc = b;
  bc.Merge(c);
  LogHistogram a_bc = a;
  a_bc.Merge(bc);
  EXPECT_EQ(Encode(ab_c), Encode(a_bc));
  LogHistogram ba = b;
  ba.Merge(a);
  LogHistogram ab = a;
  ab.Merge(b);
  EXPECT_EQ(Encode(ab), Encode(ba));
  EXPECT_EQ(ab_c.count(), a.count() + b.count() + c.count());
}

// The kObsReport encoding round-trips exactly, and truncated input is rejected
// rather than misread.
TEST(ObsPlaneHistogram, EncodeDecodeRoundTrip) {
  LogHistogram h;
  for (int i = 0; i < 500; ++i) {
    h.Record(0.25 * (i + 1) * (i % 7 + 1));
  }
  std::vector<uint8_t> wire = Encode(h);
  LogHistogram back;
  size_t consumed = 0;
  ASSERT_TRUE(back.DecodeFrom(wire.data(), wire.size(), &consumed));
  EXPECT_EQ(consumed, wire.size());
  EXPECT_EQ(Encode(back), wire);
  EXPECT_EQ(back.count(), h.count());
  EXPECT_DOUBLE_EQ(back.Percentile(99.0), h.Percentile(99.0));
  for (size_t cut = 0; cut < wire.size(); ++cut) {
    LogHistogram t;
    size_t n = 0;
    EXPECT_FALSE(t.DecodeFrom(wire.data(), cut, &n)) << "accepted " << cut
                                                     << " of " << wire.size();
  }
}

// SnapshotDelta has reset semantics: consecutive deltas partition the stream of
// observations, so summing them reproduces the totals with no double counting.
TEST(ObsPlaneHistogram, SnapshotDeltaNoDoubleCount) {
  MetricsRegistry reg;
  MetricsRegistry baseline;
  MetricsRegistry sum;
  for (int slice = 0; slice < 5; ++slice) {
    for (int i = 0; i < 10 * (slice + 1); ++i) {
      reg.Inc("c");
      reg.Observe("h", slice * 100.0 + i);
    }
    sum.Merge(reg.SnapshotDelta(&baseline));
  }
  EXPECT_EQ(sum.counter("c"), reg.counter("c"));
  ASSERT_NE(sum.FindHistogram("h"), nullptr);
  EXPECT_EQ(Encode(*sum.FindHistogram("h")), Encode(*reg.FindHistogram("h")));
  // An empty delta really is empty.
  MetricsRegistry empty = reg.SnapshotDelta(&baseline);
  EXPECT_EQ(empty.counter("c"), 0u);
}

// Every counter the plane reports: the per-slice deltas (mailed frames plus the
// final partial slice) sum back to the cluster's cumulative CostCounters.
TEST(ObsPlaneSlices, DeltasSumToTotals) {
  EmeraldSystem sys;
  AddTourNodes(sys);
  ASSERT_TRUE(sys.Load(TourSource(40)));
  NetConfig cfg;
  cfg.fault.seed = 31;
  cfg.fault.drop_rate = 0.05;
  sys.world().EnableNet(cfg);
  ObsConfig ocfg;
  ocfg.slice_us = 10'000.0;
  sys.world().EnableObs(ocfg);
  ASSERT_TRUE(sys.Run()) << sys.error();

  const ObsPlane* obs = sys.world().obs();
  ASSERT_NE(obs, nullptr);
  ASSERT_GT(obs->slices().size(), 1u) << "run too short to slice";
  EXPECT_GT(obs->report_frames(), 0u);
  EXPECT_EQ(obs->reports_dropped(), 0u);

  size_t n_specs = 0;
  const ObsCounterSpec* specs = ObsCounterSpecs(&n_specs);
  for (size_t k = 0; k < n_specs; ++k) {
    uint64_t total = 0;
    for (int n = 0; n < sys.world().num_nodes(); ++n) {
      total += sys.node(n).meter().counters().*(specs[k].field);
    }
    uint64_t sliced = 0;
    for (size_t s = 0; s < obs->slices().size(); ++s) {
      sliced += obs->SliceCounter(s, static_cast<int>(k));
    }
    EXPECT_EQ(sliced, total) << "counter " << specs[k].name;
  }
  // The workload actually exercised the interesting rows.
  EXPECT_GT(obs->SteadyStateUs("moves"), 0.0);
}

// The mailed-report path is deterministic: same seed, same merged time-series,
// byte for byte.
TEST(ObsPlaneSlices, CollectorMailDeterministic) {
  auto run = [](uint64_t seed) {
    EmeraldSystem sys;
    AddTourNodes(sys);
    EXPECT_TRUE(sys.Load(TourSource(30)));
    NetConfig cfg;
    cfg.fault.seed = seed;
    cfg.fault.drop_rate = 0.10;
    sys.world().EnableNet(cfg);
    sys.world().EnableObs(ObsConfig{});
    EXPECT_TRUE(sys.Run()) << sys.error();
    return std::pair<std::string, uint64_t>(sys.world().obs()->ToJson(),
                                            sys.world().obs()->report_frames());
  };
  auto [json1, frames1] = run(77);
  auto [json2, frames2] = run(77);
  EXPECT_GT(frames1, 0u);
  EXPECT_EQ(frames1, frames2);
  EXPECT_EQ(json1, json2);
}

// The verdict is minted from (plane seed, trace id) alone: two same-seed runs
// sample the identical move set and emit the identical event stream.
TEST(ObsPlaneSampling, SameSeedSameSampledSet) {
  auto run = [] {
    EmeraldSystem sys;
    AddTourNodes(sys);
    EXPECT_TRUE(sys.Load(TourSource(40)));
    NetConfig cfg;
    cfg.fault.seed = 5;
    sys.world().EnableNet(cfg);
    ObsConfig ocfg;
    ocfg.sample = true;
    ocfg.sample_rate = 0.5;
    ocfg.sample_seed = 99;
    // One giant slice: the target-rate controller never steps, so the rate is
    // pinned at 0.5 and the 40 draws split into both classes.
    ocfg.slice_us = 1e9;
    sys.world().EnableObs(ocfg);
    EXPECT_TRUE(sys.Run()) << sys.error();
    return std::tuple<uint64_t, uint64_t, uint64_t>(
        sys.world().obs()->sampled_moves(), sys.world().obs()->unsampled_moves(),
        sys.world().tracer().digest());
  };
  auto [s1, u1, d1] = run();
  auto [s2, u2, d2] = run();
  // Rate 0.5 over 40 moves: both classes must be populated.
  EXPECT_GT(s1, 0u);
  EXPECT_GT(u1, 0u);
  EXPECT_EQ(s1, s2);
  EXPECT_EQ(u1, u2);
  EXPECT_EQ(d1, d2);
}

// The verdict travels in the wire trace id: on a clean run (no force points)
// every surviving move-tied event — source side and destination side — carries
// the sampled bit, and each sampled move still stitches across both nodes.
TEST(ObsPlaneSampling, SourceDestConsistent) {
  EmeraldSystem sys;
  AddTourNodes(sys);
  ASSERT_TRUE(sys.Load(TourSource(40)));
  sys.world().EnableNet(NetConfig{});
  ObsConfig ocfg;
  ocfg.sample = true;
  ocfg.sample_rate = 0.5;
  sys.world().EnableObs(ocfg);
  ASSERT_TRUE(sys.Run()) << sys.error();

  EXPECT_EQ(sys.world().tracer().force_sampled_moves(), 0u);
  std::set<uint64_t> ids;
  for (const TraceEvent& ev : sys.world().tracer().Snapshot()) {
    if (ev.trace_id == 0) {
      continue;
    }
    EXPECT_NE(ev.trace_id & kSampledTraceIdBit, 0u)
        << "unsampled move leaked an event on node " << ev.node;
    ids.insert(ev.trace_id);
  }
  ASSERT_FALSE(ids.empty());
  for (uint64_t id : ids) {
    std::set<int> nodes;
    for (const TraceEvent& ev : sys.world().tracer().Snapshot()) {
      if (ev.trace_id == id) {
        nodes.insert(ev.node);
      }
    }
    EXPECT_GE(nodes.size(), 2u) << "sampled move traced on one side only";
  }
}

// A move that ends in an abort is force-sampled even at rate zero: the shadow
// buffer replays its full causal history into the ring.
TEST(ObsPlaneSampling, AbortForceSampled) {
  const char* source = R"(
    class Roamer
      var state: Int
      op go(): Int
        state := 7
        move self to nodeat(1)
        state := state + 1
        return state
      end
    end
    main
      var r: Ref := new Roamer
      print r.go()
    end
)";
  EmeraldSystem sys;
  sys.AddNode(SparcStationSlc());
  sys.AddNode(VaxStation4000());
  NetConfig cfg;
  PartitionWindow w;  // outlasts the lease: the move must abort
  w.side_a = {1};
  w.symmetric = true;
  w.start_trigger_node = 1;
  w.start_on_type = MsgType::kMovePrepare;
  w.heal_after_us = -1.0;
  cfg.fault.partitions.push_back(w);
  ASSERT_TRUE(sys.Load(source));
  sys.world().EnableNet(cfg);
  ObsConfig ocfg;
  ocfg.sample = true;
  ocfg.sample_rate = 0.0;  // no move can win the head-based draw
  ocfg.min_sample_rate = 0.0;
  sys.world().EnableObs(ocfg);
  ASSERT_TRUE(sys.Run()) << sys.error();

  EXPECT_EQ(sys.node(0).meter().counters().moves_aborted, 1u);
  const Tracer& tracer = sys.world().tracer();
  EXPECT_EQ(sys.world().obs()->sampled_moves(), 0u);
  EXPECT_GE(tracer.force_sampled_moves(), 1u);
  EXPECT_GT(tracer.shadow_promoted(), 0u);
  ASSERT_GT(tracer.count(TracePoint::kMoveAbort), 0u);
  // The promoted shadow contains the move's history from the beginning, not
  // just the abort instant.
  uint64_t abort_id = 0;
  for (const TraceEvent& ev : tracer.Snapshot()) {
    if (ev.point == TracePoint::kMoveAbort) {
      abort_id = ev.trace_id;
    }
  }
  ASSERT_NE(abort_id, 0u);
  bool saw_move_begin = false;
  for (const TraceEvent& ev : tracer.Snapshot()) {
    if (ev.trace_id == abort_id && ev.point == TracePoint::kMove &&
        ev.kind == TraceKind::kBegin) {
      saw_move_begin = true;
    }
  }
  EXPECT_TRUE(saw_move_begin);
}

// The plane is passive: enabling it (slicing, mailing, sampling) changes
// neither the program output nor the simulated clock.
TEST(ObsPlaneSampling, ScheduleUnchanged) {
  const std::string source = TourSource(20);
  auto run = [&](bool obs) {
    EmeraldSystem sys;
    AddTourNodes(sys);
    EXPECT_TRUE(sys.Load(source));
    NetConfig cfg;
    cfg.fault.seed = 13;
    cfg.fault.drop_rate = 0.10;
    sys.world().EnableNet(cfg);
    if (obs) {
      ObsConfig ocfg;
      ocfg.sample = true;
      ocfg.sample_rate = 0.25;
      sys.world().EnableObs(ocfg);
    }
    EXPECT_TRUE(sys.Run()) << sys.error();
    return std::pair<std::string, double>(sys.output(), sys.ElapsedMs());
  };
  auto [out_with, ms_with] = run(true);
  auto [out_without, ms_without] = run(false);
  EXPECT_EQ(out_with, out_without);
  EXPECT_DOUBLE_EQ(ms_with, ms_without);
}

}  // namespace
}  // namespace hetm
