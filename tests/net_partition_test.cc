// Partition tolerance of the mobility protocol (lease-based failure detection,
// DESIGN.md section 9). Two regimes, each in both cut geometries:
//
//  * A partition that heals before any lease expires is invisible to the program:
//    the in-flight move parks (channels stop retransmitting at the retry cap, the
//    handshake stays pending) and completes after the heal with ZERO aborts.
//  * A partition that outlasts the lease resolves deterministically by what
//    provably crossed the cut before it opened: transfer undelivered -> the source
//    aborts and the thread resumes at the source; transfer acknowledged -> the
//    source presumes the install and releases its limbo copy, leaving the object
//    at the destination. Either way the thread/object lives on exactly one node,
//    and the destination's orphaned reservation is reclaimed and logged.
#include <gtest/gtest.h>

#include <map>
#include <string>

#include "src/emerald/system.h"
#include "src/net/transport.h"

namespace hetm {
namespace {

// One genuine cross-node migration with the migrating thread inside the object;
// prints the rolling state and where the object ended up.
std::string RoamerSource(int expect_node) {
  return R"(
    class Roamer
      var state: Int
      op go(): Int
        state := 7
        move self to nodeat(1)
        state := state + 1
        return state
      end
    end
    main
      var r: Ref := new Roamer
      print r.go()
      print locate(r) == nodeat()" +
         std::to_string(expect_node) + R"()
    end
)";
}

void ExpectExactlyOneCopyEach(EmeraldSystem& sys, int nodes) {
  std::map<Oid, int> copies;
  for (int i = 0; i < nodes; ++i) {
    for (Oid oid : sys.node(i).ResidentUserObjects()) {
      copies[oid] += 1;
    }
  }
  EXPECT_FALSE(copies.empty());
  for (const auto& [oid, count] : copies) {
    EXPECT_EQ(count, 1) << "object " << oid << " has " << count << " live copies";
  }
}

// Symmetric cut opening at the kMovePrepare delivery — the reservation is in
// place, everything after it (the transfer, every ack) dies at the cut. The heal
// lands inside the lease, so neither side ever declares the other dead and the
// parked handshake simply finishes late.
TEST(NetPartition, SymmetricHealBeforeLeaseCompletesMoveWithZeroAborts) {
  EmeraldSystem sys;
  sys.AddNode(SparcStationSlc());
  sys.AddNode(VaxStation4000());
  NetConfig cfg;
  PartitionWindow w;
  w.side_a = {0};
  w.symmetric = true;
  w.start_trigger_node = 1;
  w.start_on_type = MsgType::kMovePrepare;
  w.heal_after_us = 60000.0;  // < lease_us: the failure detector must hold fire
  cfg.fault.partitions.push_back(w);
  ASSERT_TRUE(sys.Load(RoamerSource(/*expect_node=*/1)));
  sys.world().EnableNet(cfg);
  ASSERT_TRUE(sys.Run()) << sys.error();

  EXPECT_EQ(sys.output(), "8\ntrue\n");
  for (int i = 0; i < 2; ++i) {
    EXPECT_EQ(sys.node(i).meter().counters().moves_aborted, 0u) << "node " << i;
    EXPECT_EQ(sys.node(i).meter().counters().leases_expired, 0u) << "node " << i;
  }
  EXPECT_EQ(sys.node(0).meter().counters().moves_committed, 1u);
  ExpectExactlyOneCopyEach(sys, 2);
  EXPECT_EQ(sys.world().CheckInvariants(), "");
  // The cut must actually have bitten, and retransmissions carried the recovery.
  EXPECT_GT(sys.world().tracer().count(TracePoint::kPartitionDrop), 0u);
  EXPECT_GT(sys.node(0).meter().counters().retransmits, 0u);
}

// Asymmetric cut (only frames LEAVING the destination die — the classic one-way
// failure): the transfer installs and the thread runs on at the destination, but
// the commit, the acks and the reply are all trapped behind the cut until the
// heal. Still zero aborts, and the move commits once the cut heals.
TEST(NetPartition, AsymmetricHealBeforeLeaseCompletesMoveWithZeroAborts) {
  EmeraldSystem sys;
  sys.AddNode(SparcStationSlc());
  sys.AddNode(VaxStation4000());
  NetConfig cfg;
  PartitionWindow w;
  w.side_a = {1};
  w.symmetric = false;
  w.start_trigger_node = 1;
  w.start_on_type = MsgType::kMoveObject;
  w.heal_after_us = 60000.0;
  cfg.fault.partitions.push_back(w);
  ASSERT_TRUE(sys.Load(RoamerSource(/*expect_node=*/1)));
  sys.world().EnableNet(cfg);
  ASSERT_TRUE(sys.Run()) << sys.error();

  EXPECT_EQ(sys.output(), "8\ntrue\n");
  for (int i = 0; i < 2; ++i) {
    EXPECT_EQ(sys.node(i).meter().counters().moves_aborted, 0u) << "node " << i;
    EXPECT_EQ(sys.node(i).meter().counters().leases_expired, 0u) << "node " << i;
  }
  EXPECT_EQ(sys.node(0).meter().counters().moves_committed, 1u);
  ExpectExactlyOneCopyEach(sys, 2);
  EXPECT_EQ(sys.world().CheckInvariants(), "");
  EXPECT_GT(sys.world().tracer().count(TracePoint::kPartitionDrop), 0u);
}

// Ordering 1 of a partition outlasting the lease: the cut opens before the
// transfer could be delivered. The source's lease on the destination expires with
// the transfer provably undelivered, so it aborts and the thread resumes from the
// limbo copy at the source; the destination's lease on the source expires
// independently and reclaims the orphaned reservation.
TEST(NetPartition, PartitionOutlastingLeaseAbortsWithThreadAtSource) {
  EmeraldSystem sys;
  sys.AddNode(SparcStationSlc());
  sys.AddNode(VaxStation4000());
  NetConfig cfg;
  PartitionWindow w;
  w.side_a = {1};
  w.symmetric = true;
  w.start_trigger_node = 1;
  w.start_on_type = MsgType::kMovePrepare;
  w.heal_after_us = -1.0;  // never heals: well past any lease
  cfg.fault.partitions.push_back(w);
  ASSERT_TRUE(sys.Load(RoamerSource(/*expect_node=*/0)));
  sys.world().EnableNet(cfg);
  ASSERT_TRUE(sys.Run()) << sys.error();

  // The thread ran to completion at the source, exactly once.
  EXPECT_EQ(sys.output(), "8\ntrue\n");
  EXPECT_EQ(sys.node(0).meter().counters().moves_aborted, 1u);
  EXPECT_EQ(sys.node(0).meter().counters().moves_committed, 0u);
  EXPECT_GE(sys.node(0).meter().counters().leases_expired, 1u);
  EXPECT_NE(sys.node(0).last_abort_reason().find("transfer"), std::string::npos)
      << sys.node(0).last_abort_reason();
  // Destination side: nothing installed, reservation reclaimed and logged.
  EXPECT_TRUE(sys.node(1).ResidentUserObjects().empty());
  EXPECT_EQ(sys.node(1).meter().counters().reservations_reclaimed, 1u);
  EXPECT_GT(sys.world().tracer().count(TracePoint::kReserveReclaim), 0u);
  ExpectExactlyOneCopyEach(sys, 2);
  EXPECT_EQ(sys.world().CheckInvariants(), "");
}

// Ordering 2: the cut opens at the delivery of the ack that covers the transfer
// (start_on_ack, nth=2: prepare's ack, then the transfer's). The install provably
// happened, only the commit is trapped. The source's lease expiry finds no
// undelivered transfer and PRESUMES the commit — releasing its limbo copy instead
// of reinstalling it — so the object lives at the destination, not on two nodes.
// The move is initiated without the thread inside it so the program itself never
// has to speak across the permanent cut.
TEST(NetPartition, PartitionOutlastingLeasePresumesCommitAtDestination) {
  const char* source = R"(
    class Keeper
      var held: Int
      op set(v: Int): Int
        held := v
        return held
      end
    end
    main
      var k: Ref := new Keeper
      print k.set(4)
      move k to nodeat(1)
      print 5
    end
)";
  EmeraldSystem sys;
  sys.AddNode(SparcStationSlc());
  sys.AddNode(VaxStation4000());
  NetConfig cfg;
  PartitionWindow w;
  w.side_a = {0};
  w.symmetric = true;
  w.start_trigger_node = 0;
  w.start_on_ack = true;
  w.start_nth = 2;
  w.heal_after_us = -1.0;
  cfg.fault.partitions.push_back(w);
  ASSERT_TRUE(sys.Load(source));
  sys.world().EnableNet(cfg);
  ASSERT_TRUE(sys.Run()) << sys.error();

  EXPECT_EQ(sys.output(), "4\n5\n");
  // Source: no abort, no commit — the limbo copy was released on presumption.
  EXPECT_EQ(sys.node(0).meter().counters().moves_aborted, 0u);
  EXPECT_EQ(sys.node(0).meter().counters().moves_committed, 0u);
  EXPECT_EQ(sys.node(0).meter().counters().moves_presumed_committed, 1u);
  // Destination: installed and sole owner; its own lease on the source expired
  // while the commit sat undeliverable.
  EXPECT_EQ(sys.node(1).ResidentUserObjects().size(), 1u);
  // The source keeps only the program's root object; the Keeper's limbo copy is
  // gone (ExpectExactlyOneCopyEach below proves it lives solely at node 1).
  EXPECT_EQ(sys.node(0).ResidentUserObjects().size(), 1u);
  EXPECT_GE(sys.node(1).meter().counters().leases_expired, 1u);
  ExpectExactlyOneCopyEach(sys, 2);
  EXPECT_EQ(sys.world().CheckInvariants(), "");
}

// Time-triggered asymmetric window (satellite of the commit-lease work): the cut
// is armed by the clock, not by a protocol frame, so it covers whatever happens
// to be in flight. Opening before the move starts and healing inside the lease
// must still complete the move with zero aborts — the park/resume machinery may
// not depend on the frame-triggered arming path.
TEST(NetPartition, TimeTriggeredAsymmetricWindowCompletesMove) {
  EmeraldSystem sys;
  sys.AddNode(SparcStationSlc());
  sys.AddNode(VaxStation4000());
  NetConfig cfg;
  PartitionWindow w;
  w.side_a = {1};
  w.symmetric = false;
  w.start_us = 1000.0;  // before the program reaches its move
  w.heal_after_us = 60000.0;
  cfg.fault.partitions.push_back(w);
  ASSERT_TRUE(sys.Load(RoamerSource(/*expect_node=*/1)));
  sys.world().EnableNet(cfg);
  ASSERT_TRUE(sys.Run()) << sys.error();

  EXPECT_EQ(sys.output(), "8\ntrue\n");
  for (int i = 0; i < 2; ++i) {
    EXPECT_EQ(sys.node(i).meter().counters().moves_aborted, 0u) << "node " << i;
    EXPECT_EQ(sys.node(i).meter().counters().leases_expired, 0u) << "node " << i;
  }
  EXPECT_EQ(sys.node(0).meter().counters().moves_committed, 1u);
  ExpectExactlyOneCopyEach(sys, 2);
  EXPECT_EQ(sys.world().CheckInvariants(), "");
  EXPECT_GT(sys.world().tracer().count(TracePoint::kPartitionDrop), 0u);
}

// A thread-free move whose transfer is delivered at the destination an instant
// before every frame LEAVING the destination starts dying. The install lands;
// its ack, the commit and the dir update are all trapped. When the source's
// lease on the destination expires, "the transfer went un-ACKED" is NOT
// evidence it never arrived — this is the asymmetric-partition double-copy
// hazard of the presumed-abort rule.
const char* kTrappedAckSource = R"(
    class Keeper
      var held: Int
      op set(v: Int): Int
        held := v
        return held
      end
    end
    main
      var k: Ref := new Keeper
      print k.set(4)
      move k to nodeat(1)
      print 5
    end
)";

PartitionWindow TrappedAckWindow(double heal_after_us) {
  PartitionWindow w;
  w.side_a = {1};
  w.symmetric = false;
  w.start_trigger_node = 1;
  w.start_on_type = MsgType::kMoveObject;
  w.heal_after_us = heal_after_us;
  return w;
}

// The hazard itself, with the guard flag OFF: the legacy presumed-abort rule
// reinstalls at the source while the destination keeps its install — the single
// protocol defect the commit lease exists to close. This test pins the broken
// behaviour so the regression below demonstrably has teeth.
TEST(NetPartition, TrappedAckWithoutCommitLeaseSplitsOwnership) {
  EmeraldSystem sys;
  sys.AddNode(SparcStationSlc());
  sys.AddNode(VaxStation4000());
  NetConfig cfg;
  cfg.fault.partitions.push_back(TrappedAckWindow(/*heal_after_us=*/-1.0));
  ASSERT_TRUE(sys.Load(kTrappedAckSource));
  sys.world().EnableNet(cfg);
  ASSERT_TRUE(sys.Run()) << sys.error();

  EXPECT_EQ(sys.output(), "4\n5\n");
  // The source aborted on lease expiry ("undelivered") and reinstalled...
  EXPECT_EQ(sys.node(0).meter().counters().moves_aborted, 1u);
  // ...while the destination had already installed the transfer: two live copies.
  EXPECT_EQ(sys.node(1).ResidentUserObjects().size(), 1u);
  std::map<Oid, int> copies;
  for (int i = 0; i < 2; ++i) {
    for (Oid oid : sys.node(i).ResidentUserObjects()) {
      copies[oid] += 1;
    }
  }
  int split = 0;
  for (const auto& [oid, count] : copies) {
    if (count > 1) {
      split += 1;
    }
  }
  EXPECT_EQ(split, 1);
  EXPECT_NE(sys.world().CheckInvariants(), "");
}

// Regression for the split above: with commit leases on, the destination holds
// the decoded transfer without activating it, the source asks the object's home
// before reinstalling, and the home grants the wire generation to exactly one
// side. The source wins (the destination never even suspects it — heartbeats
// keep arriving through the one-way cut), the destination's lease is denied and
// retired, and after the heal the reconciliation sweep confirms the survivor.
TEST(NetPartition, TrappedAckWithCommitLeaseKeepsSingleCopy) {
  EmeraldSystem sys;
  sys.AddNode(SparcStationSlc());
  sys.AddNode(VaxStation4000());
  sys.AddNode(Sun3_100());  // third node: the home shard can sit off to the side
  NetConfig cfg;
  cfg.commit_lease = true;
  cfg.heal_reconcile = true;
  cfg.fault.partitions.push_back(TrappedAckWindow(/*heal_after_us=*/250000.0));
  ASSERT_TRUE(sys.Load(kTrappedAckSource));
  sys.world().EnableNet(cfg);
  sys.world().EnableDir(DirConfig{});
  ASSERT_TRUE(sys.Run()) << sys.error();

  EXPECT_EQ(sys.output(), "4\n5\n");
  // The destination held the install on lease instead of activating it.
  EXPECT_EQ(sys.node(1).meter().counters().leased_installs, 1u);
  EXPECT_EQ(sys.node(1).meter().counters().moves_committed, 0u);
  // The source arbitrated with the home instead of presuming, won, reinstalled.
  EXPECT_GE(sys.node(0).meter().counters().move_claims, 1u);
  EXPECT_EQ(sys.node(0).meter().counters().moves_aborted, 1u);
  // The losing lease was retired, never activated: exactly one copy survives.
  uint64_t retired = 0;
  uint64_t reconciles = 0;
  for (int i = 0; i < 3; ++i) {
    retired += sys.node(i).meter().counters().copies_retired;
    reconciles += sys.node(i).meter().counters().reconciles_run;
  }
  EXPECT_EQ(retired, 1u);
  EXPECT_GE(reconciles, 1u);  // the heal ran the sweep
  ExpectExactlyOneCopyEach(sys, 3);
  EXPECT_EQ(sys.world().CheckInvariants(), "");
}

}  // namespace
}  // namespace hetm
