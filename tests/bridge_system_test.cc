// Migration between differently optimized codes via bridging code (section 2.2.2).
//
// These are end-to-end tests: nodes are configured with different optimization
// levels, so every migration between them must synthesize bridging code that
// executes the schedule difference exactly once. Correctness criterion: identical
// program output to an all-O0 world.
#include <gtest/gtest.h>

#include "src/compiler/optimizer.h"
#include "src/emerald/system.h"

namespace hetm {
namespace {

const char* kScheduleSensitiveProgram = R"(
  class Worker
    var acc: Int
    // The body interleaves pure arithmetic with bus stops (prints and moves), giving
    // the O1 scheduler material to hoist across stops — Figure 3's shape: o1; stop;
    // o2..o6 becomes a reordering where some oN execute before the stop.
    op crunch(seed: Int): Int
      var a: Int := seed + 1
      print a
      var b: Int := seed * 2
      var c: Int := b + a
      move self to nodeat(1)
      var d: Int := c * 3
      var e: Int := d - b
      print e
      move self to nodeat(0)
      var f: Int := e + c + d
      return f
    end
  end
  main
    var w: Ref := new Worker
    print w.crunch(10)
  end
)";

std::string RunWith(OptLevel opt0, OptLevel opt1) {
  EmeraldSystem sys;
  sys.AddNode(SparcStationSlc(), opt0);
  sys.AddNode(VaxStation4000(), opt1);
  EXPECT_TRUE(sys.Load(kScheduleSensitiveProgram));
  EXPECT_TRUE(sys.Run()) << sys.error();
  return sys.output();
}

TEST(BridgeSystem, CrossOptMigrationMatchesUniformWorlds) {
  std::string baseline = RunWith(OptLevel::kO0, OptLevel::kO0);
  EXPECT_EQ(baseline, RunWith(OptLevel::kO1, OptLevel::kO1));
  EXPECT_EQ(baseline, RunWith(OptLevel::kO0, OptLevel::kO1));
  EXPECT_EQ(baseline, RunWith(OptLevel::kO1, OptLevel::kO0));
}

// The scheduler genuinely moves code across bus stops in this program (otherwise the
// cross-opt tests above would not be exercising bridging at all).
TEST(BridgeSystem, SchedulerActuallyReordersAcrossStops) {
  CompileResult r = CompileSource(kScheduleSensitiveProgram);
  ASSERT_TRUE(r.ok());
  bool any_motion = false;
  for (const auto& cls : r.program->classes) {
    for (const OpInfo& op : cls->ops) {
      if (!op.transposes.empty()) {
        any_motion = true;
      }
    }
  }
  EXPECT_TRUE(any_motion);
}

// Ping-pong between O0 and O1 nodes many times: every hop re-bridges, and state
// stays exact.
TEST(BridgeSystem, RepeatedReBridgingStaysExact) {
  EmeraldSystem sys;
  sys.AddNode(Sun3_100(), OptLevel::kO0);
  sys.AddNode(Hp9000_433s(), OptLevel::kO1);
  ASSERT_TRUE(sys.Load(R"(
    class Bouncer
      var total: Int
      op bounce(rounds: Int): Int
        var i: Int := 0
        var acc: Int := 7
        var r: Real := 1.0
        while i < rounds do
          move self to nodeat(1)
          acc := acc * 3 + i
          r := r * 1.5
          move self to nodeat(0)
          acc := acc - i
          i := i + 1
        end
        print r
        total := acc
        return total
      end
    end
    main
      var b: Ref := new Bouncer
      print b.bounce(6)
    end
  )")) << (sys.errors().empty() ? "" : sys.errors()[0]);
  ASSERT_TRUE(sys.Run()) << sys.error();
  // Reference values computed by the same arithmetic in the host.
  int acc = 7;
  double r = 1.0;
  for (int i = 0; i < 6; ++i) {
    acc = acc * 3 + i;
    r *= 1.5;
    acc -= i;
  }
  EXPECT_EQ(sys.output(), std::to_string(r).substr(0, 0) + [&] {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%g\n%d\n", r, acc);
    return std::string(buf);
  }());
}

// Heterogeneous *and* differently optimized at once: the bridge is architecture-
// independent (machine-independent interpreter over canonical values), so crossing
// VAX O1 -> SPARC O0 works the same as same-arch crossings.
TEST(BridgeSystem, CrossArchCrossOptSimultaneously) {
  EmeraldSystem sys;
  sys.AddNode(VaxStation4000(), OptLevel::kO1);
  sys.AddNode(SparcStationSlc(), OptLevel::kO0);
  sys.AddNode(Sun3_100(), OptLevel::kO1);
  ASSERT_TRUE(sys.Load(R"(
    class Tri
      var sum: Int
      op tour(): Int
        var x: Int := 11
        var y: Real := 2.5
        move self to nodeat(1)
        x := x * 5
        y := y + 0.75
        move self to nodeat(2)
        x := x - 6
        print y
        move self to nodeat(0)
        sum := x
        return sum
      end
    end
    main
      var t: Ref := new Tri
      print t.tour()
    end
  )")) << (sys.errors().empty() ? "" : sys.errors()[0]);
  ASSERT_TRUE(sys.Run()) << sys.error();
  EXPECT_EQ(sys.output(), "3.25\n49\n");
}

}  // namespace
}  // namespace hetm
