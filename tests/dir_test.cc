// Sharded home-directory object location (src/dir) and the open-loop traffic
// generator (src/sim/traffic).
//
//  * The consistent-hash ring is deterministic and reasonably balanced.
//  * Home shards are generation-guarded: a kDirUpdate that raced a later move
//    (committed while the update was in flight) can never roll an entry back.
//  * Steady-state location lookups never broadcast: client -> home -> owner.
//  * A multi-hop tour leaves the home entry naming the final owner, at the
//    install count's generation, even when updates arrive out of order.
//  * Home crash: the locate broadcast fires exactly once per lease expiry, and
//    the answer re-primes the hints so the next lookup is direct again.
//  * Same-seed replays of a traffic + scheduler + directory world are
//    bit-identical (output, trace digest, simulated time).
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "src/dir/directory.h"
#include "src/emerald/system.h"
#include "src/net/transport.h"
#include "src/sched/sched.h"
#include "src/sim/traffic.h"

namespace hetm {
namespace {

// ---------------------------------------------------------------------------
// Ring / shard unit level
// ---------------------------------------------------------------------------

TEST(DirRing, SameConfigSameHomesAcrossInstances) {
  DirConfig cfg;
  DirRing a(256, cfg);
  DirRing b(256, cfg);
  for (uint32_t i = 0; i < 5000; ++i) {
    Oid oid = MakeDataOid(i % 256, i);
    int home = a.HomeOf(oid);
    EXPECT_EQ(home, b.HomeOf(oid));
    EXPECT_GE(home, 0);
    EXPECT_LT(home, 256);
  }
}

TEST(DirRing, ShardsAreReasonablyBalancedAt256Nodes) {
  DirConfig cfg;
  DirRing ring(256, cfg);
  std::vector<int> load(256, 0);
  constexpr int kKeys = 100000;
  for (uint32_t i = 0; i < kKeys; ++i) {
    load[ring.HomeOf(MakeDataOid(i % 256, i / 256))] += 1;
  }
  int min_load = kKeys, max_load = 0;
  for (int l : load) {
    min_load = std::min(min_load, l);
    max_load = std::max(max_load, l);
  }
  double mean = static_cast<double>(kKeys) / 256.0;
  EXPECT_GT(min_load, 0) << "some node owns no keys";
  // 8 vnodes per node keeps the spread modest; the exact bound is generous so
  // the test pins "balanced", not one hash function's constants.
  EXPECT_LT(max_load, mean * 4.0);
  EXPECT_GT(min_load, mean / 8.0);
}

TEST(DirRing, DifferentSeedsGiveDifferentRings) {
  DirConfig a_cfg;
  DirConfig b_cfg;
  b_cfg.ring_seed = 12345;
  DirRing a(64, a_cfg);
  DirRing b(64, b_cfg);
  int differing = 0;
  for (uint32_t i = 0; i < 1000; ++i) {
    Oid oid = MakeDataOid(i % 64, i);
    differing += a.HomeOf(oid) != b.HomeOf(oid) ? 1 : 0;
  }
  EXPECT_GT(differing, 500);
}

// A move that commits while the previous install's kDirUpdate is still in
// flight delivers the updates out of order; the generation guard must keep the
// newest ownership record regardless of arrival order.
TEST(DirShard, GenerationGuardDropsStaleUpdates) {
  World world;
  world.AddNode(SparcStationSlc());
  world.AddNode(VaxStation4000());
  world.EnableDir(DirConfig{});
  Directory* dir = world.dir();
  Oid oid = MakeDataOid(0, 7);
  int home = dir->HomeOf(oid);

  EXPECT_EQ(dir->Lookup(home, oid), nullptr);
  EXPECT_TRUE(dir->Apply(home, oid, /*owner=*/1, /*gen=*/2));   // second install
  EXPECT_FALSE(dir->Apply(home, oid, /*owner=*/0, /*gen=*/1));  // late first install
  EXPECT_FALSE(dir->Apply(home, oid, /*owner=*/0, /*gen=*/2));  // duplicate
  const Directory::Entry* e = dir->Lookup(home, oid);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->owner, 1);
  EXPECT_EQ(e->gen, 2u);

  EXPECT_TRUE(dir->Apply(home, oid, /*owner=*/0, /*gen=*/3));  // a real later move
  e = dir->Lookup(home, oid);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->owner, 0);
  EXPECT_EQ(e->gen, 3u);
  EXPECT_EQ(dir->ShardSize(home), 1u);

  dir->OnNodeCrash(home);
  EXPECT_EQ(dir->Lookup(home, oid), nullptr);
  EXPECT_EQ(dir->ShardSize(home), 0u);
}

// ---------------------------------------------------------------------------
// System level
// ---------------------------------------------------------------------------

uint64_t SumCounter(EmeraldSystem& sys, uint64_t CostCounters::*field) {
  uint64_t total = 0;
  for (int n = 0; n < sys.world().num_nodes(); ++n) {
    total += sys.node(n).meter().counters().*field;
  }
  return total;
}

Oid ClassOidOf(const EmeraldSystem& sys, const std::string& name) {
  const CompiledProgram& prog = *sys.program();
  for (size_t i = 0; i < prog.classes.size(); ++i) {
    if (prog.classes[i]->name == name) {
      return prog.class_oids[i];
    }
  }
  return kNilOid;
}

// A third-party node locating an object it has never seen costs a directory
// lookup, never a broadcast: client -> home -> owner.
TEST(DirSystem, ThirdPartyLookupNeverBroadcasts) {
  EmeraldSystem sys;
  sys.AddNode(SparcStationSlc());
  sys.AddNode(Sun3_100());
  sys.AddNode(VaxStation4000());
  sys.AddNode(Hp9000_385());
  ASSERT_TRUE(sys.Load(R"(
    class Target
      var n: Int
      op hit(): Int
        n := n + 1
        return n
      end
    end
    class Prober
      var junk: Int
      op probe(t: Ref): Int
        return t.hit()
      end
    end
    main
      var t: Ref := new Target
      move t to nodeat(1)
      var p: Ref := new Prober
      move p to nodeat(2)
      print p.probe(t)
    end
  )")) << (sys.errors().empty() ? "" : sys.errors()[0]);
  sys.world().EnableNet(NetConfig{});
  sys.world().EnableDir(DirConfig{});
  ASSERT_TRUE(sys.Run()) << sys.error();
  EXPECT_EQ(sys.output(), "1\n");
  EXPECT_EQ(SumCounter(sys, &CostCounters::locate_queries), 0u);
  EXPECT_EQ(SumCounter(sys, &CostCounters::locate_broadcasts), 0u);
  // Both moves mailed their home an ownership record.
  EXPECT_GE(SumCounter(sys, &CostCounters::dir_updates), 2u);
  EXPECT_EQ(sys.world().CheckInvariants(), "");
}

// After a multi-hop tour the home entry names the final owner at the install
// count's generation — the compaction mail-backs and install updates may race,
// but the generation guard makes their arrival order irrelevant.
TEST(DirSystem, ThreeHopTourLeavesHomeEntryAtFinalOwner) {
  EmeraldSystem sys;
  sys.AddNode(SparcStationSlc());
  sys.AddNode(Sun3_100());
  sys.AddNode(VaxStation4000());
  sys.AddNode(Hp9000_433s());
  ASSERT_TRUE(sys.Load(R"(
    class Wanderer
      var n: Int
      op tag(v: Int): Int
        n := n + v
        return n
      end
    end
    main
      var w: Ref := new Wanderer
      move w to nodeat(1)
      move w to nodeat(2)
      move w to nodeat(3)
      move w to nodeat(1)
      print w.tag(5)
    end
  )")) << (sys.errors().empty() ? "" : sys.errors()[0]);
  sys.world().EnableDir(DirConfig{});
  ASSERT_TRUE(sys.Run()) << sys.error();
  EXPECT_EQ(sys.output(), "5\n");

  Oid wanderer_class = ClassOidOf(sys, "Wanderer");
  ASSERT_NE(wanderer_class, kNilOid);
  Oid wanderer = kNilOid;
  for (Oid oid : sys.node(1).ResidentUserObjects()) {
    const EmObject* obj = sys.node(1).FindLocal(oid);
    if (obj != nullptr && obj->code_oid == wanderer_class) {
      wanderer = oid;
    }
  }
  ASSERT_NE(wanderer, kNilOid) << "wanderer did not end up on node 1";

  Directory* dir = sys.world().dir();
  int home = dir->HomeOf(wanderer);
  const Directory::Entry* e = dir->Lookup(home, wanderer);
  ASSERT_NE(e, nullptr) << "home shard has no record of the wanderer";
  EXPECT_EQ(e->owner, 1);
  EXPECT_EQ(e->gen, 4u) << "four installs must leave generation 4";
  EXPECT_EQ(sys.world().CheckInvariants(), "");
}

// Rapid ping-pong: twelve installs' worth of kDirUpdate / compaction mail may
// arrive at the home in any interleaving; the entry must still converge on the
// final placement and generation.
TEST(DirSystem, PingPongUpdatesConvergeAtHome) {
  EmeraldSystem sys;
  sys.AddNode(SparcStationSlc());
  sys.AddNode(Sun3_100());
  ASSERT_TRUE(sys.Load(R"(
    class Ball
      var n: Int
      op touch(): Int
        n := n + 1
        return n
      end
    end
    main
      var b: Ref := new Ball
      var i: Int := 0
      while i < 6 do
        move b to nodeat(1)
        b.touch()
        move b to nodeat(0)
        b.touch()
        i := i + 1
      end
      print b.touch()
    end
  )")) << (sys.errors().empty() ? "" : sys.errors()[0]);
  sys.world().EnableNet(NetConfig{});
  sys.world().EnableDir(DirConfig{});
  ASSERT_TRUE(sys.Run()) << sys.error();
  EXPECT_EQ(sys.output(), "13\n");

  Oid ball_class = ClassOidOf(sys, "Ball");
  ASSERT_NE(ball_class, kNilOid);
  Oid ball = kNilOid;
  for (Oid oid : sys.node(0).ResidentUserObjects()) {
    const EmObject* obj = sys.node(0).FindLocal(oid);
    if (obj != nullptr && obj->code_oid == ball_class) {
      ball = oid;
    }
  }
  ASSERT_NE(ball, kNilOid);
  Directory* dir = sys.world().dir();
  const Directory::Entry* e = dir->Lookup(dir->HomeOf(ball), ball);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->owner, 0);
  EXPECT_EQ(e->gen, 12u);
  EXPECT_EQ(SumCounter(sys, &CostCounters::locate_broadcasts), 0u);
  EXPECT_EQ(sys.world().CheckInvariants(), "");
}

// The broadcast is a last resort reserved for home failure: crash an object's
// home, then look the object up from a node with no hints. The lease on the
// dead home expires once, one broadcast rebuilds the hint, and the next lookup
// is direct again — at most one broadcast per expiry.
TEST(DirSystem, HomeCrashFallsBackToBroadcastAtMostOncePerExpiry) {
  EmeraldSystem sys;
  sys.AddNode(SparcStationSlc());
  sys.AddNode(Sun3_100());
  sys.AddNode(VaxStation4000());
  sys.AddNode(Hp9000_385());
  ASSERT_TRUE(sys.Load(R"(
    class Svc
      var n: Int
      op poke(): Int
        n := n + 1
        return n
      end
    end
    main
      var x: Int := 0
      print x
    end
  )")) << (sys.errors().empty() ? "" : sys.errors()[0]);
  Oid svc_class = ClassOidOf(sys, "Svc");
  ASSERT_NE(svc_class, kNilOid);
  // Host-side object on node 0, created before boot so its OID is known now.
  Oid target = sys.node(0).CreateObject(svc_class);

  // Pick a ring salt that homes the target on node 2 — the node we crash —
  // with the owner on 0 and the client on 3.
  DirConfig dcfg;
  for (uint64_t seed = 1;; ++seed) {
    dcfg.ring_seed = seed;
    if (DirRing(4, dcfg).HomeOf(target) == 2) {
      break;
    }
  }

  NetConfig ncfg;
  ncfg.fault.crashes.push_back(
      CrashEvent{/*node=*/2, /*at_us=*/400000.0, /*restart_at_us=*/-1.0});
  sys.world().EnableNet(ncfg);
  sys.world().EnableDir(dcfg);
  ASSERT_EQ(sys.world().dir()->HomeOf(target), 2);

  sys.world().Boot(0);
  ASSERT_TRUE(sys.world().Run()) << sys.error();
  ASSERT_EQ(sys.output(), "0\n");

  // The home is dead. A hintless client's lookup routes there, the lease
  // expires, and exactly one broadcast rebuilds the location.
  sys.node(3).InjectInvoke(target, "poke");
  ASSERT_TRUE(sys.world().Run()) << sys.error();
  EXPECT_EQ(SumCounter(sys, &CostCounters::locate_broadcasts), 1u);

  // The broadcast's answer primed node 3's hint: the second lookup is direct.
  sys.node(3).InjectInvoke(target, "poke");
  ASSERT_TRUE(sys.world().Run()) << sys.error();
  EXPECT_EQ(SumCounter(sys, &CostCounters::locate_broadcasts), 1u);

  // Both pokes landed on the (still live) owner.
  const EmObject* obj = sys.node(0).FindLocal(target);
  ASSERT_NE(obj, nullptr);
  EXPECT_EQ(sys.world().CheckInvariants(), "");
}

// ---------------------------------------------------------------------------
// Traffic generator + replay determinism
// ---------------------------------------------------------------------------

constexpr const char* kSvcSource = R"(
    class Svc
      var n: Int
      op poke(): Int
        n := n + 1
        return n
      end
    end
    main
      var x: Int := 0
      print x
    end
)";

struct TrafficRun {
  std::string output;
  uint64_t trace_digest = 0;
  double now_us = 0.0;
  uint64_t locate_queries = 0;
  uint64_t dir_lookups = 0;
  uint64_t dir_updates = 0;
  uint64_t injected = 0;
};

TrafficRun RunTrafficWorld(int nodes, uint64_t arrivals, uint64_t seed,
                           bool sched) {
  static const MachineModel kCycle[6] = {SparcStationSlc(), Sun3_100(),
                                         Hp9000_433s(),     Hp9000_385(),
                                         VaxStation4000(),  VaxStation2000()};
  EmeraldSystem sys;
  for (int i = 0; i < nodes; ++i) {
    sys.AddNode(kCycle[i % 6]);
  }
  EXPECT_TRUE(sys.Load(kSvcSource));
  NetConfig ncfg;
  ncfg.fault.seed = seed;
  sys.world().EnableNet(ncfg);
  if (sched) {
    sys.world().EnableSched(SchedConfig{});
  }
  sys.world().EnableDir(DirConfig{});
  TrafficConfig tcfg;
  tcfg.seed = seed;
  tcfg.arrival_per_s = 4000.0;
  tcfg.max_arrivals = arrivals;
  tcfg.zipf_s = 1.0;
  tcfg.objects = 100;
  tcfg.move_fraction = 0.05;
  tcfg.diurnal_amplitude = 0.5;
  tcfg.diurnal_period_us = 500000.0;
  sys.world().EnableTraffic(tcfg);

  sys.world().Boot(0);
  EXPECT_TRUE(sys.world().Run(20'000'000)) << sys.error();

  TrafficRun r;
  r.output = sys.output();
  r.trace_digest = sys.world().tracer().digest();
  r.now_us = sys.world().NowMaxUs();
  r.locate_queries = SumCounter(sys, &CostCounters::locate_queries);
  r.dir_lookups = SumCounter(sys, &CostCounters::dir_lookups);
  r.dir_updates = SumCounter(sys, &CostCounters::dir_updates);
  r.injected = sys.world().traffic()->injected();
  return r;
}

// Open-loop Zipf traffic against a healthy mid-size cluster: every arrival is
// injected, lookups flow client -> home -> owner, and no locate broadcast ever
// fires — the acceptance criterion's steady-state O(1) location cost.
TEST(DirTraffic, SteadyStateZipfTrafficNeverBroadcasts) {
  TrafficRun r = RunTrafficWorld(/*nodes=*/16, /*arrivals=*/500, /*seed=*/7,
                                 /*sched=*/false);
  EXPECT_EQ(r.injected, 500u);
  EXPECT_EQ(r.locate_queries, 0u);
  EXPECT_GT(r.dir_lookups, 0u);
  EXPECT_GT(r.dir_updates, 0u);
}

// Same seed, scheduler and directory both enabled: the replay must be
// bit-identical — same output, same trace digest, same simulated end time.
TEST(DirTraffic, SameSeedReplayIsBitIdentical) {
  TrafficRun a = RunTrafficWorld(/*nodes=*/8, /*arrivals=*/300, /*seed=*/42,
                                 /*sched=*/true);
  TrafficRun b = RunTrafficWorld(/*nodes=*/8, /*arrivals=*/300, /*seed=*/42,
                                 /*sched=*/true);
  EXPECT_EQ(a.output, b.output);
  EXPECT_EQ(a.trace_digest, b.trace_digest);
  EXPECT_EQ(a.now_us, b.now_us);
  EXPECT_EQ(a.injected, b.injected);
  EXPECT_EQ(a.dir_lookups, b.dir_lookups);
  EXPECT_EQ(a.dir_updates, b.dir_updates);
}

// Different seeds must actually change the schedule (the generator is not
// ignoring its seed).
TEST(DirTraffic, DifferentSeedsDiverge) {
  TrafficRun a = RunTrafficWorld(/*nodes=*/8, /*arrivals=*/300, /*seed=*/1,
                                 /*sched=*/false);
  TrafficRun b = RunTrafficWorld(/*nodes=*/8, /*arrivals=*/300, /*seed=*/2,
                                 /*sched=*/false);
  EXPECT_NE(a.trace_digest, b.trace_digest);
}

}  // namespace
}  // namespace hetm
