// Differential property testing: pseudo-randomly generated programs must print the
// same output on every architecture, at every optimization level, and regardless of
// how often the executing object migrates mid-computation. This is the strongest
// statement of the paper's correctness claim: the machine-dependent representations
// differ everywhere, the observable semantics nowhere.
#include <gtest/gtest.h>

#include "src/emerald/system.h"

namespace hetm {
namespace {

class Rng {
 public:
  explicit Rng(uint64_t seed) : x_(seed * 2654435761u + 1) {}
  uint64_t Next() {
    x_ ^= x_ << 13;
    x_ ^= x_ >> 7;
    x_ ^= x_ << 17;
    return x_;
  }
  int Range(int n) { return static_cast<int>(Next() % static_cast<uint64_t>(n)); }

 private:
  uint64_t x_;
};

class ProgramGen {
 public:
  explicit ProgramGen(uint64_t seed, int num_nodes) : rng_(seed), num_nodes_(num_nodes) {}

  std::string Generate() {
    std::string body;
    // Declarations.
    for (int i = 0; i < 4; ++i) {
      body += Indent() + "var i" + std::to_string(i) + ": Int := " +
              std::to_string(rng_.Range(2000) - 1000) + "\n";
    }
    for (int i = 0; i < 2; ++i) {
      body += Indent() + "var r" + std::to_string(i) + ": Real := " +
              std::to_string(rng_.Range(64)) + "." + std::to_string(rng_.Range(100)) +
              "\n";
    }
    body += Indent() + "var b0: Bool := " + (rng_.Range(2) != 0 ? "true" : "false") + "\n";
    for (int s = 0; s < 14; ++s) {
      body += Statement(2);
    }
    body += Indent() + "return i0 + i1 + i2 + i3\n";

    return "class Worker\n"
           "  var acc: Int\n"
           "  op work(seed: Int): Int\n" +
           body +
           "  end\n"
           "end\n"
           "main\n"
           "  var w: Ref := new Worker\n"
           "  print w.work(" + std::to_string(rng_.Range(100)) + ")\n"
           "end\n";
  }

 private:
  std::string Indent() const { return std::string(static_cast<size_t>(depth_) * 2 + 4, ' '); }

  std::string IntVar() { return "i" + std::to_string(rng_.Range(4)); }
  std::string RealVar() { return "r" + std::to_string(rng_.Range(2)); }

  std::string IntExpr(int depth) {
    if (depth == 0 || rng_.Range(3) == 0) {
      switch (rng_.Range(3)) {
        case 0: return IntVar();
        case 1: return std::to_string(rng_.Range(200) - 100);
        default: return "seed";
      }
    }
    switch (rng_.Range(6)) {
      case 0: return "(" + IntExpr(depth - 1) + " + " + IntExpr(depth - 1) + ")";
      case 1: return "(" + IntExpr(depth - 1) + " - " + IntExpr(depth - 1) + ")";
      case 2: return "(" + IntExpr(depth - 1) + " * " + std::to_string(rng_.Range(7) - 3) + ")";
      case 3: return "(" + IntExpr(depth - 1) + " / " + std::to_string(rng_.Range(9) + 1) + ")";
      case 4: return "(" + IntExpr(depth - 1) + " % " + std::to_string(rng_.Range(9) + 1) + ")";
      default: return "(-" + IntExpr(depth - 1) + ")";
    }
  }

  std::string RealExpr(int depth) {
    if (depth == 0 || rng_.Range(3) == 0) {
      if (rng_.Range(2) == 0) {
        return RealVar();
      }
      return std::to_string(rng_.Range(16)) + "." + std::to_string(rng_.Range(100));
    }
    switch (rng_.Range(3)) {
      case 0: return "(" + RealExpr(depth - 1) + " + " + RealExpr(depth - 1) + ")";
      case 1: return "(" + RealExpr(depth - 1) + " - " + RealExpr(depth - 1) + ")";
      default: return "(" + RealExpr(depth - 1) + " * 0.5)";
    }
  }

  std::string BoolExpr(int depth) {
    switch (rng_.Range(4)) {
      case 0: return "(" + IntExpr(depth) + " < " + IntExpr(depth) + ")";
      case 1: return "(" + IntExpr(depth) + " == " + IntExpr(depth) + ")";
      case 2: return "(b0 and (" + IntExpr(depth) + " >= " + IntExpr(depth) + "))";
      default: return "(not b0)";
    }
  }

  std::string Statement(int depth) {
    switch (rng_.Range(8)) {
      case 0:
        return Indent() + IntVar() + " := " + IntExpr(2) + "\n";
      case 1:
        return Indent() + RealVar() + " := " + RealExpr(2) + "\n";
      case 2:
        return Indent() + "b0 := " + BoolExpr(1) + "\n";
      case 3:
        return Indent() + "print " + IntVar() + "\n";
      case 4: {
        if (depth == 0) {
          return Indent() + "print " + RealVar() + "\n";
        }
        ++depth_;
        std::string arm1 = Statement(depth - 1);
        std::string arm2 = Statement(depth - 1);
        --depth_;
        return Indent() + "if " + BoolExpr(1) + " then\n" + arm1 + Indent() + "else\n" +
               arm2 + Indent() + "end\n";
      }
      case 5: {
        if (depth == 0) {
          return Indent() + "print b0\n";
        }
        std::string counter = "t" + std::to_string(counter_id_++);
        ++depth_;
        std::string inner = Statement(depth - 1);
        --depth_;
        return Indent() + "var " + counter + ": Int := " + std::to_string(rng_.Range(4) + 1) +
               "\n" + Indent() + "while " + counter + " > 0 do\n" + inner + Indent() +
               "  " + counter + " := " + counter + " - 1\n" + Indent() + "end\n";
      }
      case 6:
        if (num_nodes_ > 1) {
          return Indent() + "move self to nodeat(" + std::to_string(rng_.Range(num_nodes_)) +
                 ")\n";
        }
        return Indent() + "acc := acc + 1\n";
      default:
        return Indent() + "acc := acc + " + IntExpr(1) + "\n";
    }
  }

  Rng rng_;
  int num_nodes_;
  int depth_ = 0;
  int counter_id_ = 0;
};

std::string RunOn(const std::string& src, std::vector<MachineModel> machines,
                  OptLevel opt) {
  EmeraldSystem sys;
  for (const MachineModel& m : machines) {
    sys.AddNode(m, opt);
  }
  EXPECT_TRUE(sys.Load(src)) << src;
  EXPECT_TRUE(sys.Run()) << sys.error() << "\nprogram:\n" << src;
  return sys.output();
}

class Differential : public ::testing::TestWithParam<int> {};

TEST_P(Differential, SingleNodeAllArchsAllOptLevelsAgree) {
  ProgramGen gen(static_cast<uint64_t>(GetParam()), /*num_nodes=*/1);
  std::string src = gen.Generate();
  std::string reference =
      RunOn(src, {SparcStationSlc()}, OptLevel::kO0);
  for (const MachineModel& m : {SparcStationSlc(), Sun3_100(), VaxStation4000()}) {
    for (OptLevel opt : {OptLevel::kO0, OptLevel::kO1}) {
      EXPECT_EQ(RunOn(src, {m}, opt), reference)
          << m.name << " " << OptLevelName(opt) << "\nprogram:\n" << src;
    }
  }
}

TEST_P(Differential, HeterogeneousMigrationPreservesOutput) {
  ProgramGen gen(static_cast<uint64_t>(GetParam()) * 7919 + 13, /*num_nodes=*/3);
  std::string src = gen.Generate();
  // Reference: the same three-node topology but homogeneous, so every `move self`
  // is still a real migration — just never a representation change.
  std::string reference = RunOn(
      src, {SparcStationSlc(), SparcStationSlc(), SparcStationSlc()}, OptLevel::kO0);
  // The same program, with its `move self` statements now genuinely migrating the
  // worker across three architectures (and mixed opt levels on a second run).
  std::string het =
      RunOn(src, {SparcStationSlc(), Sun3_100(), VaxStation4000()}, OptLevel::kO0);
  EXPECT_EQ(het, reference) << src;
  EmeraldSystem mixed;
  mixed.AddNode(SparcStationSlc(), OptLevel::kO1);
  mixed.AddNode(Sun3_100(), OptLevel::kO0);
  mixed.AddNode(VaxStation4000(), OptLevel::kO1);
  ASSERT_TRUE(mixed.Load(src));
  ASSERT_TRUE(mixed.Run()) << mixed.error() << "\nprogram:\n" << src;
  EXPECT_EQ(mixed.output(), reference) << src;
}

INSTANTIATE_TEST_SUITE_P(Seeds, Differential, ::testing::Range(1, 13));

}  // namespace
}  // namespace hetm
