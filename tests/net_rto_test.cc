// Adaptive retransmission timers (Jacobson/Karels SRTT/RTTVAR with Karn's rule).
// Unit tests pin down the estimator arithmetic; the in-world tests check that the
// transport actually feeds it honest samples (no samples from retransmitted
// frames) and that the scheduled data RTO never underflows the configured floor,
// even under heavy loss where backoff and re-sampling interleave.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "src/emerald/system.h"
#include "src/net/transport.h"

namespace hetm {
namespace {

constexpr double kMin = 2000.0;
constexpr double kMax = 120000.0;
constexpr double kInitial = 15000.0;

TEST(NetRto, NoSampleFallsBackToInitial) {
  RttEstimator est;
  EXPECT_EQ(est.Rto(kMin, kMax, kInitial), kInitial);
}

TEST(NetRto, SteadyRttConvergesToTightTimeout) {
  RttEstimator est;
  for (int i = 0; i < 64; ++i) {
    est.Sample(4000.0);
  }
  // RTTVAR decays toward zero on a constant stream, so RTO -> SRTT = 4 ms,
  // clamped from below only by the floor.
  EXPECT_NEAR(est.srtt_us, 4000.0, 1.0);
  double rto = est.Rto(kMin, kMax, kInitial);
  EXPECT_GE(rto, 4000.0);
  EXPECT_LT(rto, 4400.0);
  EXPECT_LT(rto, kInitial) << "adaptive RTO should beat the fixed 15 ms timer";
}

TEST(NetRto, JitterWidensTheTimeout) {
  RttEstimator steady;
  RttEstimator jittery;
  for (int i = 0; i < 64; ++i) {
    steady.Sample(4000.0);
    jittery.Sample(i % 2 == 0 ? 3000.0 : 5000.0);
  }
  // Same mean RTT, but the variance term must keep the jittery channel's RTO
  // strictly above the quiet channel's.
  EXPECT_NEAR(jittery.srtt_us, 4000.0, 300.0);
  EXPECT_GT(jittery.Rto(kMin, kMax, kInitial), steady.Rto(kMin, kMax, kInitial));
}

TEST(NetRto, ClampsToFloorAndCeiling) {
  RttEstimator fast;
  for (int i = 0; i < 64; ++i) {
    fast.Sample(100.0);  // sub-floor RTT: RTO must not chase it below rto_min
  }
  EXPECT_EQ(fast.Rto(kMin, kMax, kInitial), kMin);

  RttEstimator slow;
  for (int i = 0; i < 8; ++i) {
    slow.Sample(1.0e6);  // pathological RTT: RTO pinned at the ceiling
  }
  EXPECT_EQ(slow.Rto(kMin, kMax, kInitial), kMax);
}

TEST(NetRto, FirstSampleSeedsSrttAndVariance) {
  RttEstimator est;
  est.Sample(6000.0);
  EXPECT_DOUBLE_EQ(est.srtt_us, 6000.0);
  EXPECT_DOUBLE_EQ(est.rttvar_us, 3000.0);
  EXPECT_DOUBLE_EQ(est.Rto(kMin, kMax, kInitial), 18000.0);  // srtt + 4*rttvar
}

// A cross-node program chatty enough to produce a stream of acked data frames on
// the 0->1 channel (each move handshake contributes prepare/transfer/commit
// round-trips in both directions).
std::string PingPongSource(int rounds) {
  return R"(
    class Shuttle
      var pad: Int
      op run(rounds: Int): Int
        var i: Int := 0
        while i < rounds do
          move self to nodeat(1)
          move self to nodeat(0)
          i := i + 1
        end
        return i
      end
    end
    main
      var s: Ref := new Shuttle
      print s.run()" +
         std::to_string(rounds) + R"()
    end
)";
}

TEST(NetRto, FaultFreeRunLearnsAPlausibleRtt) {
  EmeraldSystem sys;
  sys.AddNode(SparcStationSlc());
  sys.AddNode(VaxStation4000());
  NetConfig cfg;
  ASSERT_TRUE(sys.Load(PingPongSource(4)));
  sys.world().EnableNet(cfg);
  ASSERT_TRUE(sys.Run()) << sys.error();
  EXPECT_EQ(sys.output(), "4\n");

  const RttEstimator* rtt = sys.world().net()->ChannelRtt(0, 1);
  ASSERT_NE(rtt, nullptr);
  ASSERT_TRUE(rtt->has_sample) << "fault-free acked frames must feed the estimator";
  // 2 ms propagation each way plus serialization: the learned SRTT has to sit in
  // the low-millisecond band, nowhere near the 15 ms fixed default.
  EXPECT_GT(rtt->srtt_us, 1000.0);
  EXPECT_LT(rtt->srtt_us, 15000.0);
  uint64_t retx = 0;
  for (int i = 0; i < 2; ++i) {
    retx += sys.node(i).meter().counters().retransmits;
  }
  EXPECT_EQ(retx, 0u) << "no loss -> every sample is a clean (Karn-eligible) one";
}

TEST(NetRto, ScheduledRtoNeverUnderflowsFloorUnderHeavyLoss) {
  EmeraldSystem sys;
  sys.AddNode(SparcStationSlc());
  sys.AddNode(VaxStation4000());
  NetConfig cfg;
  cfg.fault.seed = 0xF100Dull;
  cfg.fault.drop_rate = 0.10;
  ASSERT_TRUE(sys.Load(PingPongSource(6)));
  sys.world().EnableNet(cfg);
  ASSERT_TRUE(sys.Run()) << sys.error();
  EXPECT_EQ(sys.output(), "6\n");

  // The transport records the smallest RTO it ever armed for a data frame; the
  // invariant is that adaptation plus Karn's rule can never push it below the
  // configured floor, no matter how the loss pattern interleaves with sampling.
  EXPECT_GE(sys.world().net()->min_data_rto_scheduled(), cfg.rto_min_us);
  EXPECT_LT(sys.world().net()->min_data_rto_scheduled(), 1e17)
      << "at least one data frame must actually have been scheduled";
}

TEST(NetRto, FixedModeKeepsLegacyTimerAndLearnsNothing) {
  EmeraldSystem sys;
  sys.AddNode(SparcStationSlc());
  sys.AddNode(VaxStation4000());
  NetConfig cfg;
  cfg.adaptive_rto = false;
  ASSERT_TRUE(sys.Load(PingPongSource(3)));
  sys.world().EnableNet(cfg);
  ASSERT_TRUE(sys.Run()) << sys.error();
  EXPECT_EQ(sys.output(), "3\n");

  // Every data frame is armed with exactly the fixed timeout, and the estimator
  // is never fed.
  EXPECT_EQ(sys.world().net()->min_data_rto_scheduled(), cfg.rto_us);
  const RttEstimator* rtt = sys.world().net()->ChannelRtt(0, 1);
  if (rtt != nullptr) {
    EXPECT_FALSE(rtt->has_sample);
  }
}

}  // namespace
}  // namespace hetm
