// Whole-group thread migration for synchronized objects (DESIGN.md §16): a
// monitor moves together with its lock holder, entry-queue waiters and
// condition-queue waiters in one prepare/transfer/commit handshake, and the
// waiters re-queue at the destination in canonical order — entry queue first,
// then each condition queue in declaration order, each in original enqueue
// sequence. A contended run with the monitor moved mid-contention must print
// exactly what the no-move run prints, and replay bit-identically.
#include <gtest/gtest.h>

#include <string>

#include "src/emerald/system.h"
#include "src/net/transport.h"

namespace hetm {
namespace {

// Producer/consumer over a one-slot buffer; `%MOVES%` is spliced with the
// migration schedule under test (or nothing, for the baseline run).
std::string ProdConsSource(const std::string& moves, int items) {
  std::string src = R"(
    monitor class Buffer
      var slot: Int
      var full: Int
      cond notfull
      cond notempty
      op put(v: Int)
        while full == 1 do
          wait notfull
        end
        slot := v
        full := 1
        signal notempty
      end
      op get(): Int
        while full == 0 do
          wait notempty
        end
        full := 0
        signal notfull
        return slot
      end
    end
    monitor class Sink
      var sum: Int
      var count: Int
      cond donec
      op add(v: Int)
        sum := sum + v
        count := count + 1
        signal donec
      end
      op waitdone(n: Int)
        while count < n do
          wait donec
        end
      end
      op total(): Int
        return sum
      end
    end
    class Producer
      var junk: Int
      op produce(b: Ref, n: Int)
        var i: Int := 1
        while i <= n do
          b.put(i)
          i := i + 1
        end
      end
    end
    class Consumer
      var junk: Int
      op consume(b: Ref, s: Ref, n: Int)
        var i: Int := 0
        while i < n do
          var v: Int := b.get()
          s.add(v)
          i := i + 1
        end
      end
    end
    main
      var b: Ref := new Buffer
      var s: Ref := new Sink
      var p: Ref := new Producer
      var c: Ref := new Consumer
      spawn p.produce(b, %N%)
      spawn c.consume(b, s, %N%)
      %MOVES%
      s.waitdone(%N%)
      print s.total()
    end
  )";
  auto splice = [&src](const std::string& tag, const std::string& text) {
    size_t pos;
    while ((pos = src.find(tag)) != std::string::npos) {
      src.replace(pos, tag.size(), text);
    }
  };
  splice("%MOVES%", moves);
  splice("%N%", std::to_string(items));
  return src;
}

struct RunOut {
  std::string output;
  std::string error;
  std::string invariants;
  uint64_t digest = 0;
  uint64_t waiters_moved = 0;
  bool quiesced = false;
};

RunOut RunProdCons(const std::string& moves, int items) {
  EmeraldSystem sys;
  sys.AddNode(SparcStationSlc());
  sys.AddNode(Sun3_100());
  sys.AddNode(VaxStation4000());
  RunOut r;
  EXPECT_TRUE(sys.Load(ProdConsSource(moves, items)))
      << (sys.errors().empty() ? "" : sys.errors()[0]);
  r.quiesced = sys.Run();
  r.output = sys.output();
  r.error = sys.error();
  r.digest = sys.world().tracer().digest();
  r.invariants = sys.world().CheckInvariants();
  for (int n = 0; n < sys.world().num_nodes(); ++n) {
    r.waiters_moved += sys.node(n).meter().counters().sync_waiters_moved;
  }
  return r;
}

// The acceptance gate: a contended producer/consumer with the buffer migrated
// mid-contention prints output equal to the run with no move at all.
TEST(SyncGroup, MoveMidContentionMatchesNoMoveRun) {
  RunOut baseline = RunProdCons("", 20);
  ASSERT_TRUE(baseline.quiesced) << baseline.error;
  EXPECT_EQ(baseline.output, "210\n");  // 1 + 2 + ... + 20
  EXPECT_EQ(baseline.invariants, "");

  RunOut moved = RunProdCons("move b to nodeat(1)\n      move b to nodeat(2)", 20);
  ASSERT_TRUE(moved.quiesced) << moved.error;
  EXPECT_EQ(moved.output, baseline.output);
  EXPECT_EQ(moved.invariants, "");
}

// Same seedless setup, run twice: the group move re-queues waiters in canonical
// order, so the whole schedule — trace digest included — replays bit-identically.
TEST(SyncGroup, GroupMoveReplaysBitIdentically) {
  RunOut a = RunProdCons("move b to nodeat(1)\n      move b to nodeat(2)", 20);
  RunOut b = RunProdCons("move b to nodeat(1)\n      move b to nodeat(2)", 20);
  ASSERT_TRUE(a.quiesced) << a.error;
  EXPECT_EQ(a.output, b.output);
  EXPECT_EQ(a.digest, b.digest);
}

// One monitor, three kinds of parked segment at the instant of the move: the
// lock holder blocked in a remote call, an entry-queue waiter, and a
// cond-queue waiter. All three migrate with the object; the deterministic
// final value (122) proves the wakeup order survived the move — if the cond
// waiter were re-queued ahead of the entry waiter the result would be 222.
const char* kThreeWaiterSource = R"(
    class Helper
      var called: Int
      op pause(): Int
        called := 1
        var i: Int := 0
        while i < 400000 do
          i := i + 1
        end
        return 1
      end
      op wascalled(): Int
        return called
      end
    end
    monitor class Box
      var n: Int
      var done: Int
      var armed: Int
      cond c
      op waiter()
        armed := 1
        while n == 0 do
          wait c
        end
        n := n + 100
        done := done + 1
      end
      op slow(helper: Ref)
        n := n + 1
        helper.pause()
        n := n + 10
        signal c
        done := done + 1
      end
      op fast()
        n := n * 2
        done := done + 1
      end
      op isarmed(): Int
        return armed
      end
      op finished(): Int
        return done
      end
      op value(): Int
        return n
      end
    end
    main
      var h: Ref := new Helper
      move h to nodeat(1)
      var b: Ref := new Box
      spawn b.waiter()
      var a: Int := 0
      while a == 0 do
        a := b.isarmed()
      end
      spawn b.slow(h)
      var k: Int := 0
      while k == 0 do
        k := h.wascalled()
      end
      spawn b.fast()
      var z: Int := 0
      while z < 5000 do
        z := z + 1
      end
      move b to nodeat(2)
      var d: Int := 0
      while d < 3 do
        d := b.finished()
      end
      print b.value()
      print locate(b) == nodeat(2)
    end
)";

TEST(SyncGroup, MovesHolderEntryWaiterAndCondWaiterTogether) {
  EmeraldSystem sys;
  sys.AddNode(SparcStationSlc());
  sys.AddNode(Sun3_100());
  sys.AddNode(VaxStation4000());
  ASSERT_TRUE(sys.Load(kThreeWaiterSource))
      << (sys.errors().empty() ? "" : sys.errors()[0]);
  ASSERT_TRUE(sys.Run()) << sys.error();
  // slow: 0+1, +10 after the remote call; fast (entry queue head): 11*2 = 22;
  // waiter (signaled, behind fast): 22+100 = 122.
  EXPECT_EQ(sys.output(), "122\ntrue\n");
  EXPECT_EQ(sys.world().CheckInvariants(), "");
  uint64_t waiters_moved = 0;
  for (int n = 0; n < sys.world().num_nodes(); ++n) {
    waiters_moved += sys.node(n).meter().counters().sync_waiters_moved;
  }
  // At least the entry waiter and the cond waiter arrived parked.
  EXPECT_GE(waiters_moved, 2u);
}

// The sync.* counters feed the metrics registry (total.* rollups) so
// `hetm_run --stats` can print the monitor-contention line.
TEST(SyncGroup, SyncCountersExportToMetricsRegistry) {
  EmeraldSystem sys;
  sys.AddNode(SparcStationSlc());
  sys.AddNode(Sun3_100());
  sys.AddNode(VaxStation4000());
  ASSERT_TRUE(sys.Load(kThreeWaiterSource))
      << (sys.errors().empty() ? "" : sys.errors()[0]);
  ASSERT_TRUE(sys.Run()) << sys.error();
  sys.world().ExportMetrics();
  const auto& counters = sys.world().metrics().counters();
  EXPECT_GT(counters.at("total.sync.acquires"), 0u);
  EXPECT_GT(counters.at("total.sync.waits"), 0u);
  EXPECT_GT(counters.at("total.sync.signals"), 0u);
  EXPECT_GT(counters.at("total.sync.waiters_moved"), 0u);
}

// Transport mode, with a partition cut on the transfer frame: whether each
// group move commits or aborts (limbo waiters reinstalled, queue positions
// intact), the program finishes with the same output and the waiter-accounting
// invariant holds at quiescence.
TEST(SyncGroup, AbortedGroupMoveReinstallsEveryWaiter) {
  // The first move's transfer arrives at node 1, the second's at node 2; cut
  // the destination off the instant its transfer is delivered, so the decoded
  // group (waiters included) sits in limbo on one side while the source's
  // handshake times out on the other.
  for (int trigger_node : {1, 2}) {
    EmeraldSystem sys;
    sys.AddNode(SparcStationSlc());
    sys.AddNode(Sun3_100());
    sys.AddNode(VaxStation4000());
    ASSERT_TRUE(sys.Load(ProdConsSource(
        "move b to nodeat(1)\n      move b to nodeat(2)", 20)))
        << (sys.errors().empty() ? "" : sys.errors()[0]);
    NetConfig cfg;
    cfg.commit_lease = true;
    cfg.heal_reconcile = true;
    cfg.fault.seed = 7;
    PartitionWindow w;
    w.side_a = {trigger_node};
    w.start_on_type = MsgType::kMoveObject;
    w.start_trigger_node = trigger_node;
    w.start_nth = 1;
    w.heal_after_us = 60000.0;
    cfg.fault.partitions.push_back(w);
    sys.world().EnableNet(cfg);
    sys.world().EnableDir(DirConfig{});
    ASSERT_TRUE(sys.Run()) << "cut at node " << trigger_node << ": " << sys.error();
    EXPECT_EQ(sys.output(), "210\n") << "cut at node " << trigger_node;
    EXPECT_EQ(sys.world().CheckInvariants(), "") << "cut at node " << trigger_node;
  }
}

}  // namespace
}  // namespace hetm
