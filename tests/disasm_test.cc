#include "src/isa/disasm.h"

#include <gtest/gtest.h>

#include "src/compiler/compiler.h"
#include "src/isa/isa.h"

namespace hetm {
namespace {

const OpInfo& CompileBody(std::shared_ptr<const CompiledProgram>* keep) {
  CompileResult r = CompileSource(R"(
    class D
      var f: Real
      op body(n: Int): Real
        var x: Real := 1.5
        print n
        var i: Int := 0
        while i < n do
          x := x * 2.0
          i := i + 1
        end
        f := x
        return x
      end
    end
    main
    end
  )");
  EXPECT_TRUE(r.ok());
  *keep = r.program;
  for (const auto& cls : r.program->classes) {
    if (cls->name == "D") {
      return cls->ops[0];
    }
  }
  HETM_UNREACHABLE("class D not found");
}

TEST(Disasm, FormatsOperandsByKind) {
  MicroOp m;
  m.kind = MKind::kAdd;
  m.dst = MOperand::Reg(3);
  m.a = MOperand::Slot(8);
  m.b = MOperand::Imm(-7);
  EXPECT_EQ(FormatMicroOp(m), "add r3, fp[8], #-7");

  MicroOp f;
  f.kind = MKind::kFMov;
  f.dst = MOperand::FReg(0);
  f.a = MOperand::Slot(16);
  EXPECT_EQ(FormatMicroOp(f), "fmov f0, fp[16]");

  MicroOp t;
  t.kind = MKind::kTrap;
  t.site = 3;
  EXPECT_EQ(FormatMicroOp(t), "trap site:3");

  MicroOp g;
  g.kind = MKind::kGetF;
  g.dst = MOperand::Reg(17);
  g.imm = 12;
  EXPECT_EQ(FormatMicroOp(g), "getf r17, self+12");
}

TEST(Disasm, WholeOpListingsCoverEveryByteOnEveryArch) {
  std::shared_ptr<const CompiledProgram> keep;
  const OpInfo& op = CompileBody(&keep);
  for (Arch arch : {Arch::kVax32, Arch::kM68k, Arch::kSparc32}) {
    const ArchOpCode& code = op.Code(arch, OptLevel::kO0);
    std::string listing = DisassembleCode(arch, code);
    // Every bus stop is annotated.
    for (size_t s = 0; s < code.stops.size(); ++s) {
      EXPECT_NE(listing.find("bus stop " + std::to_string(s)), std::string::npos)
          << ArchName(arch);
    }
    // Lengths printed sum to the image (spot-check: listing has one line per
    // decoded instruction).
    size_t instrs = DecodeAll(arch, code.code).size();
    size_t lines = 0;
    for (char c : listing) {
      lines += c == '\n' ? 1 : 0;
    }
    EXPECT_GE(lines, instrs);
  }
}

TEST(Disasm, VaxAndSparcListingsDiffer) {
  std::shared_ptr<const CompiledProgram> keep;
  const OpInfo& op = CompileBody(&keep);
  std::string vax = DisassembleCode(Arch::kVax32, op.Code(Arch::kVax32, OptLevel::kO0));
  std::string sparc =
      DisassembleCode(Arch::kSparc32, op.Code(Arch::kSparc32, OptLevel::kO0));
  EXPECT_NE(vax, sparc);
  // SPARC uses sethi for the big float-flag constants / loads; VAX never does.
  EXPECT_EQ(vax.find("sethi"), std::string::npos);
}

}  // namespace
}  // namespace hetm
