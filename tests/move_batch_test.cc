// The batched co-location move path (kMoveBatch) and the forwarding-chain
// contracts that ride on it:
//
//  * Coalescing: N co-resident objects travel under ONE handshake — one
//    prepare/transfer/commit, one wire stream, one shared string section — yet
//    every member is installed and individually owned at the destination.
//  * Atomicity: a batch transfer that dies with a crashed destination aborts as
//    a unit; every member's limbo copy is reinstalled at the source and the
//    at-most-once property holds for all of them.
//  * Hop accounting: traffic chasing a moved object pays ONE forwarding hop per
//    handshake (batched or not), and forwarding-chain compaction keeps stale
//    clients within the hop bound — no locate broadcast — across many moves.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "src/emerald/system.h"
#include "src/net/transport.h"
#include "src/obs/trace.h"

namespace hetm {
namespace {

// Three idle servers born (and resident) on node 0; main exercises each once so
// they are genuine, initialized user objects, then finishes.
const char* kThreeServers = R"(
    class Server
      var n: Int
      op bump(v: Int): Int
        n := n + v
        return n
      end
    end
    main
      var s1: Ref := new Server
      var s2: Ref := new Server
      var s3: Ref := new Server
      print s1.bump(1) + s2.bump(2) + s3.bump(3)
    end
)";

// The three server oids: everything resident on node 0 except the $Main
// instance, which was created first and therefore has the smallest oid.
std::vector<Oid> ServerOids(EmeraldSystem& sys) {
  std::vector<Oid> oids = sys.node(0).ResidentUserObjects();
  std::sort(oids.begin(), oids.end());
  oids.erase(oids.begin());
  return oids;
}

uint64_t CountBegins(const std::vector<TraceEvent>& events, TracePoint p) {
  uint64_t n = 0;
  for (const TraceEvent& ev : events) {
    n += (ev.point == p && ev.kind == TraceKind::kBegin) ? 1 : 0;
  }
  return n;
}

TEST(MoveBatch, CoalescesCoLocatedObjectsUnderOneHandshake) {
  EmeraldSystem sys;
  sys.AddNode(SparcStationSlc());
  sys.AddNode(VaxStation4000());
  ASSERT_TRUE(sys.Load(kThreeServers));
  sys.world().EnableNet(NetConfig{});
  ASSERT_TRUE(sys.Run()) << sys.error();
  ASSERT_EQ(sys.output(), "6\n");

  std::vector<Oid> oids = ServerOids(sys);
  ASSERT_EQ(oids.size(), 3u);
  sys.node(0).SchedMoveBatch(oids, /*dest_node=*/1);
  ASSERT_TRUE(sys.world().Run()) << sys.error();

  const CostCounters& src = sys.node(0).meter().counters();
  EXPECT_EQ(src.moves_committed, 1u) << "three objects, ONE handshake";
  EXPECT_EQ(src.sched_committed, 3u) << "all three members committed";
  EXPECT_EQ(src.moves, 3u);  // per-member marshalling cost is still per object
  EXPECT_EQ(src.moves_aborted, 0u);
  for (Oid oid : oids) {
    EXPECT_FALSE(sys.node(0).IsResident(oid));
    EXPECT_TRUE(sys.node(1).IsResident(oid));
  }

  // One batch = one move span, one pack, one transfer leg, one unpack — not
  // three of each.
  std::vector<TraceEvent> events = sys.world().tracer().Snapshot();
  EXPECT_EQ(CountBegins(events, TracePoint::kMove), 1u);
  EXPECT_EQ(CountBegins(events, TracePoint::kPack), 1u);
  EXPECT_EQ(CountBegins(events, TracePoint::kTransfer), 1u);
  EXPECT_EQ(CountBegins(events, TracePoint::kUnpack), 1u);
  EXPECT_EQ(sys.world().CheckInvariants(), "");
}

// The destination crash-stops at the instant the kMoveBatch transfer frame would
// arrive, then restarts with its reservation gone. The source times out, the
// move query draws a kUnknown verdict, and the whole batch aborts as one unit:
// every member's limbo copy is reinstalled at the source.
TEST(MoveBatch, AbortOnDestCrashRestoresEveryMemberAtSource) {
  EmeraldSystem sys;
  sys.AddNode(SparcStationSlc());
  sys.AddNode(VaxStation4000());
  ASSERT_TRUE(sys.Load(kThreeServers));
  NetConfig cfg;
  cfg.fault.crash_triggers.push_back(
      CrashTrigger{/*node=*/1, MsgType::kMoveBatch, /*nth=*/1,
                   /*restart_after_us=*/kMidMoveRestartAfterUs});
  sys.world().EnableNet(cfg);
  ASSERT_TRUE(sys.Run()) << sys.error();

  std::vector<Oid> oids = ServerOids(sys);
  ASSERT_EQ(oids.size(), 3u);
  sys.node(0).SchedMoveBatch(oids, /*dest_node=*/1);
  ASSERT_TRUE(sys.world().Run()) << sys.error();

  const CostCounters& src = sys.node(0).meter().counters();
  EXPECT_EQ(src.moves_aborted, 1u);
  EXPECT_EQ(src.moves_committed, 0u);
  EXPECT_EQ(src.sched_committed, 0u);
  for (Oid oid : oids) {
    EXPECT_TRUE(sys.node(0).IsResident(oid)) << "limbo copy not reinstalled";
    EXPECT_FALSE(sys.node(1).IsResident(oid));
  }
  EXPECT_EQ(sys.world().CheckInvariants(), "");
}

// Forwarding-chain compaction: an object tours ten nodes (more migrations than
// max_forward_hops) while a prober on a far node keeps invoking it through its
// stale hints. Every delivered invoke that crossed relays sends location updates
// back down the chain, so the prober's next access is short again: across the
// whole tour nothing ever exhausts the hop bound and the locate broadcast stays
// silent.
TEST(MoveBatch, ForwardChainCompactionKeepsStaleClientsWithinHopBound) {
  const char* source = R"(
    class Wanderer
      var n: Int
      op touch(): Int
        n := n + 1
        return n
      end
    end
    class Prober
      var junk: Int
      op probe(w: Ref): Int
        return w.touch()
      end
    end
    main
      var w: Ref := new Wanderer
      var p: Ref := new Prober
      move p to nodeat(11)
      move w to nodeat(1)
      move w to nodeat(2)
      move w to nodeat(3)
      print p.probe(w)
      move w to nodeat(4)
      move w to nodeat(5)
      move w to nodeat(6)
      print p.probe(w)
      move w to nodeat(7)
      move w to nodeat(8)
      move w to nodeat(9)
      print p.probe(w)
      move w to nodeat(10)
      print p.probe(w)
      print locate(w) == nodeat(10)
    end
)";
  EmeraldSystem sys;
  for (int i = 0; i < 12; ++i) {
    sys.AddNode(i % 2 == 0 ? SparcStationSlc() : VaxStation4000());
  }
  ASSERT_TRUE(sys.Load(source));
  sys.world().EnableNet(NetConfig{});
  ASSERT_TRUE(sys.Run()) << sys.error();

  EXPECT_EQ(sys.output(), "1\n2\n3\n4\ntrue\n");
  uint64_t locates = 0;
  for (int i = 0; i < sys.world().num_nodes(); ++i) {
    locates += sys.node(i).meter().counters().locate_queries;
  }
  EXPECT_EQ(locates, 0u) << "a stale client fell back to the locate broadcast";
  EXPECT_EQ(sys.world().CheckInvariants(), "");
}

}  // namespace
}  // namespace hetm
